"""Command-line interface for the MixQ-GNN reproduction.

Seven sub-commands cover the everyday workflows::

    python -m repro.cli search   --dataset cora --lambda 0.1 --out assignment.json
    python -m repro.cli train    --dataset cora --assignment assignment.json
    python -m repro.cli table    --name table3 --datasets cora
    python -m repro.cli export   --dataset cora --uniform-bits 8 --out artifact.npz
    python -m repro.cli predict  --artifact artifact.npz --dataset cora
    python -m repro.cli loadtest --dataset cora --qps 200 --duration 2 --emit BENCH.json
    python -m repro.cli streamtest --dataset cora --qps 200 --update-every 8

``search`` runs the differentiable bit-width search and stores the selected
assignment; ``train`` quantization-aware-trains a model from a stored (or
uniform) assignment and reports accuracy / bits / GBitOPs; ``table`` runs
one of the paper-table experiment runners at the quick scale and prints it;
``export`` QAT-trains and writes a self-contained integer deployment
artifact (npz + json sidecar); ``predict`` serves requests from a saved
artifact with integer arithmetic — full-graph or memory-bounded
neighbor-sampled blocks — and reports per-request latency and BitOPs;
``loadtest`` replays deterministic production-shaped traffic (zipfian seed
popularity, open- or closed-loop) against the async serving engine and
reports p50/p95/p99 latency, achieved vs offered QPS, SLO violations and
cache hit rate — optionally persisting them into a ``BENCH_*.json``
trajectory file (see ``docs/benchmarks.md``); ``streamtest`` replays a
temporal trace — the same query stream with edge additions, feature
overwrites and edge removals interleaved — against a block session with
streaming updates and scoped cache invalidation enabled (see
``docs/streaming.md``).

Every sub-command accepts ``--conv`` from the six supported layer families
(gcn / sage / gin / gat / tag / transformer); the attention families run in
block mode through per-edge score plans, with ``--hops`` selecting the TAG
polynomial depth and ``--heads`` / ``--head-merge`` the multi-head
configuration of the GAT / Transformer layers (hidden layers merge by
``--head-merge``, the output layer averages its heads).  See
``docs/serving.md`` for the end-to-end export-then-predict guide and the
knob defaults.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.core.build import layer_dimensions
from repro.core.mixq import MixQNodeClassifier
from repro.core.search_space import conv_component_names
from repro.experiments.common import format_table
from repro.experiments.config import current_scale
from repro.experiments.results_io import load_assignment, save_assignment, save_mixq_result
from repro.graphs.datasets import NODE_DATASETS, load_node_dataset
from repro.quant.degree_quant import DegreeQuantizer, attach_degree_probabilities, \
    degree_quant_factory
from repro.quant.qmodules import (
    QuantNodeClassifier,
    default_quantizer_factory,
    uniform_assignment,
)


#: Every layer family the quantization + serving stack supports end to end.
CONV_CHOICES = ("gcn", "sage", "gin", "gat", "tag", "transformer")


def _add_common_model_arguments(parser: argparse.ArgumentParser,
                                convs: Sequence[str] = CONV_CHOICES) -> None:
    parser.add_argument("--dataset", default="cora", choices=sorted(NODE_DATASETS),
                        help="node-classification dataset stand-in "
                             "(default: cora)")
    parser.add_argument("--conv", default="gcn", choices=list(convs),
                        help="layer family to quantize (default: gcn)")
    parser.add_argument("--hidden", type=int, default=16,
                        help="hidden width (default: 16)")
    parser.add_argument("--layers", type=int, default=2,
                        help="number of layers (default: 2)")
    parser.add_argument("--hops", type=int, default=3,
                        help="adjacency powers per TAG layer; other families "
                             "ignore it (default: 3)")
    parser.add_argument("--heads", type=int, default=1,
                        help="attention heads per GAT / Transformer layer; "
                             "other families ignore it (default: 1)")
    parser.add_argument("--head-merge", default="concat",
                        choices=["concat", "mean"],
                        help="hidden-layer head merge; the output layer "
                             "always averages its heads (default: concat, "
                             "which needs --hidden divisible by --heads)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="dataset down-scaling factor (default: 0.2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="random seed (default: 0)")
    parser.add_argument("--degree-quant", action="store_true",
                        help="use Degree-Quant quantizers (MixQ + DQ)")


def _build_mixq(args, graph, lambda_value: float) -> MixQNodeClassifier:
    factory = degree_quant_factory() if args.degree_quant else default_quantizer_factory
    return MixQNodeClassifier(args.conv, graph.num_features, args.hidden,
                              graph.num_classes, num_layers=args.layers,
                              bit_choices=tuple(args.bits), lambda_value=lambda_value,
                              quantizer_factory=factory, hops=args.hops,
                              heads=args.heads, head_merge=args.head_merge,
                              seed=args.seed)


def _command_search(args) -> int:
    graph = load_node_dataset(args.dataset, scale=args.scale, seed=args.seed)
    mixq = _build_mixq(args, graph, args.lambda_value)
    result = mixq.search(graph, epochs=args.epochs)
    print(f"selected average bit-width: {result.average_bits:.2f}")
    for component, bits in sorted(result.assignment.items()):
        print(f"  {component:<28} {bits} bits")
    if args.out:
        save_assignment(result.assignment, args.out,
                        metadata={"dataset": args.dataset, "lambda": args.lambda_value,
                                  "conv": args.conv, "hidden": args.hidden,
                                  "layers": args.layers})
        print(f"assignment written to {args.out}")
    return 0


def _command_train(args) -> int:
    graph = load_node_dataset(args.dataset, scale=args.scale, seed=args.seed)
    if args.assignment:
        assignment = load_assignment(args.assignment)
    else:
        assignment = uniform_assignment(
            conv_component_names(args.conv, args.layers, hops=args.hops),
            args.uniform_bits)
    mixq = _build_mixq(args, graph, lambda_value=0.0)
    result = mixq.fit(graph, train_epochs=args.epochs, assignment=assignment)
    print(f"test accuracy      : {result.accuracy:.3f}")
    print(f"average bit-width  : {result.average_bits:.2f}")
    print(f"GBitOPs            : {result.giga_bit_operations:.4f}")
    if args.out:
        save_mixq_result(result, args.out)
        print(f"result written to {args.out}")
    return 0


def _command_table(args) -> int:
    from repro.experiments import ablation, node_tables

    scale = current_scale()
    if args.datasets:
        datasets = tuple(args.datasets)
    else:
        # table7 runs on the large-scale stand-ins, not the citation graphs.
        datasets = ("reddit",) if args.name == "table7" else ("cora",)
    sampled = {"minibatch": args.minibatch, "fanout": args.fanout,
               "batch_size": args.batch_size}
    if args.minibatch and args.name not in ("table3", "table7"):
        print(f"note: --minibatch is only wired into table3/table7; "
              f"{args.name} runs full-batch", file=sys.stderr)
    if args.name == "table3":
        results = node_tables.table3_node_classification(datasets=datasets, scale=scale,
                                                         **sampled)
    elif args.name == "table6":
        results = node_tables.table6_graphsage(datasets=datasets, scale=scale)
    elif args.name == "table7":
        results = node_tables.table7_large_scale(datasets=datasets, scale=scale,
                                                 **sampled)
    elif args.name == "table10":
        results = ablation.table10_random_vs_mixq(datasets=datasets, scale=scale)
    else:
        raise ValueError(f"unknown table {args.name!r}")
    for dataset, rows in results.items():
        print(format_table(f"{args.name} — {dataset}", rows))
        print()
    return 0


def _train_for_export(dataset: str, conv: str, hidden: int, layers: int,
                      scale: float, seed: int, assignment, epochs: int,
                      lr: float, degree_quant: bool, hops: int = 3,
                      heads: int = 1, head_merge: str = "concat"):
    """The deterministic QAT run behind ``repro export``.

    Shared with the test suite so the in-memory fake-quantized reference the
    exported artifact must match can be reconstructed exactly.
    Returns ``(graph, model, test_accuracy)`` with the model in eval mode.
    """
    from repro.training.trainer import evaluate_node_classifier, train_node_classifier

    graph = load_node_dataset(dataset, scale=scale, seed=seed)
    factory = degree_quant_factory() if degree_quant else default_quantizer_factory
    model = QuantNodeClassifier.from_assignment(
        layer_dimensions(graph.num_features, hidden, graph.num_classes, layers),
        conv, assignment, quantizer_factory=factory, hops=hops,
        heads=heads, head_merge=head_merge,
        rng=np.random.default_rng(seed))
    if any(isinstance(module, DegreeQuantizer) for module in model.modules()):
        attach_degree_probabilities(model, graph)
    train_node_classifier(model, graph, epochs=epochs, lr=lr)
    model.eval()
    accuracy = evaluate_node_classifier(model, graph, graph.test_mask)
    return graph, model, accuracy


def _command_export(args) -> int:
    from repro.serving import QuantizedArtifact

    if args.assignment:
        assignment = load_assignment(args.assignment)
    else:
        assignment = uniform_assignment(
            conv_component_names(args.conv, args.layers, hops=args.hops),
            args.uniform_bits)
    graph, model, accuracy = _train_for_export(
        args.dataset, args.conv, args.hidden, args.layers, args.scale, args.seed,
        assignment, args.epochs, args.lr, args.degree_quant, hops=args.hops,
        heads=args.heads, head_merge=args.head_merge)

    artifact = QuantizedArtifact.from_model(model, metadata={
        "dataset": args.dataset, "scale": args.scale, "seed": args.seed,
        "hidden": args.hidden, "test_accuracy": float(accuracy),
        "heads": int(args.heads), "head_merge": args.head_merge,
        "degree_quant": bool(args.degree_quant)})
    npz_path, json_path = artifact.save(args.out)
    print(artifact.summary())
    print(f"test accuracy      : {accuracy:.3f}")
    print(f"average bit-width  : {artifact.metadata['average_bits']:.2f}")
    print(f"arrays written to  : {npz_path}")
    print(f"sidecar written to : {json_path}")
    return 0


def _build_block_session(artifact, graph, args, cache_bytes=None):
    """Block session of ``repro predict`` / ``repro loadtest``: the
    single-process :class:`BlockSession`, or — with ``--shards N`` —
    the bit-identical multi-process :class:`ShardedBlockSession`."""
    from repro.serving import BlockSession

    fanout = None if args.fanout <= 0 else args.fanout
    shards = getattr(args, "shards", 0)
    if shards > 1:
        from repro.sharding import ShardedBlockSession

        deadline = args.shard_deadline if args.shard_deadline > 0 else None
        return ShardedBlockSession(
            artifact, graph, shards=shards, partition=args.partition,
            fanouts=fanout, batch_size=args.batch_size, seed=args.seed,
            cache_size=args.cache_size, cache_bytes=cache_bytes,
            backend=args.backend or None, request_deadline_s=deadline)
    return BlockSession(artifact, graph, fanouts=fanout,
                        batch_size=args.batch_size, seed=args.seed,
                        cache_size=args.cache_size, cache_bytes=cache_bytes,
                        backend=args.backend or None)


def _add_sharding_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.graphs.partition import PARTITION_STRATEGIES

    parser.add_argument("--shards", type=int, default=0,
                        help="serve block mode from this many worker "
                             "processes (default: 0 = single process); "
                             "sharded logits are bit-identical to "
                             "single-process serving")
    parser.add_argument("--partition", default="hash",
                        choices=list(PARTITION_STRATEGIES),
                        help="graph partition strategy for --shards "
                             "(default: hash)")
    parser.add_argument("--shard-deadline", type=float, default=0.0,
                        help="per-chunk deadline in seconds with --shards; "
                             "an overrun kills and restarts the worker and "
                             "fails only that request (default: 0 = none)")


def _command_predict(args) -> int:
    from repro.serving import FullGraphSession, QuantizedArtifact, ServingEngine

    graph = load_node_dataset(args.dataset, scale=args.scale, seed=args.seed)
    artifact = QuantizedArtifact.load(args.artifact)
    if artifact.num_features != graph.num_features:
        print(f"artifact expects {artifact.num_features} features but "
              f"{args.dataset} (scale {args.scale}) has {graph.num_features}; "
              f"pass the export-time --dataset/--scale/--seed", file=sys.stderr)
        return 1

    if args.mode == "full":
        session = FullGraphSession(artifact, graph, backend=args.backend or None)
        if args.cache_size:
            print("note: --cache-size only applies to block mode",
                  file=sys.stderr)
        if args.shards > 1:
            print("note: --shards only applies to block mode",
                  file=sys.stderr)
    else:
        cache_bytes = int(args.cache_mb * 1e6) if args.cache_mb > 0 else None
        session = _build_block_session(artifact, graph, args,
                                       cache_bytes=cache_bytes)

    if args.nodes:
        nodes = np.asarray(args.nodes, dtype=np.int64)
    elif args.split == "all" or getattr(graph, f"{args.split}_mask") is None:
        nodes = np.arange(graph.num_nodes, dtype=np.int64)
    else:
        nodes = np.flatnonzero(getattr(graph, f"{args.split}_mask"))
    if nodes.size == 0:
        print("no nodes to predict", file=sys.stderr)
        getattr(session, "close", lambda: None)()
        return 1

    engine = ServingEngine(session, max_batch_size=args.batch_size,
                           workers=args.workers)
    try:
        num_requests = min(max(1, args.requests), nodes.size)
        results = []
        for _ in range(max(1, args.repeat)):
            for chunk in np.array_split(nodes, num_requests):
                engine.submit(chunk)
            results = engine.flush()
        cache_stats = getattr(session, "cache_stats", lambda: None)()
    finally:
        engine.close()
        getattr(session, "close", lambda: None)()

    mode = args.mode if args.shards <= 1 or args.mode == "full" \
        else f"{args.mode}[{args.shards}x{args.partition}]"
    print(f"{artifact.summary()}  mode={mode}  "
          f"backend={session.backend_name}")
    print(f"{'request':>8} {'nodes':>6} {'latency ms':>11} {'GBitOPs':>9}")
    for result in results:
        print(f"{result.request_id:>8} {result.nodes.shape[0]:>6} "
              f"{result.latency_seconds * 1e3:>11.2f} "
              f"{result.giga_bit_operations:>9.4f}")
    stats = engine.stats
    print(f"served {stats.nodes} nodes in {stats.requests} requests / "
          f"{stats.micro_batches} micro-batches "
          f"({stats.throughput():.0f} nodes/s, "
          f"{stats.giga_bit_operations:.4f} GBitOPs, "
          f"workers={args.workers})")
    if cache_stats is not None:
        print(f"block cache: {cache_stats.hits} hits / "
              f"{cache_stats.misses} misses "
              f"(hit rate {cache_stats.hit_rate():.1%}), "
              f"{cache_stats.entries} entries / "
              f"{cache_stats.bytes / 1e6:.2f} MB, "
              f"{cache_stats.evictions} evictions")

    logits = np.concatenate([result.logits for result in results], axis=0)
    classes = logits.argmax(axis=1)
    if graph.y is not None and graph.y.ndim == 1:
        accuracy = float((classes == graph.y[nodes]).mean())
        print(f"accuracy on served nodes: {accuracy:.3f}")
    if args.out:
        np.savez(args.out, nodes=nodes, logits=logits, classes=classes)
        print(f"logits written to {args.out}")
    return 0


def _loadtest_session(args):
    """(graph, session) for the load test: saved artifact or quick QAT."""
    from repro.serving import QuantizedArtifact

    if args.artifact:
        graph = load_node_dataset(args.dataset, scale=args.scale, seed=args.seed)
        artifact = QuantizedArtifact.load(args.artifact)
        if artifact.num_features != graph.num_features:
            raise SystemExit(
                f"artifact expects {artifact.num_features} features but "
                f"{args.dataset} (scale {args.scale}) has "
                f"{graph.num_features}; pass the export-time "
                f"--dataset/--scale/--seed")
    else:
        assignment = uniform_assignment(
            conv_component_names(args.conv, args.layers, hops=3),
            args.uniform_bits)
        graph, model, _ = _train_for_export(
            args.dataset, args.conv, args.hidden, args.layers, args.scale,
            args.seed, assignment, args.train_epochs, 0.01, False)
        artifact = QuantizedArtifact.from_model(model)

    return graph, _build_block_session(artifact, graph, args)


def _loadtest_result_name(args) -> str:
    """Stable default result name: pattern, arrival process, replay mode."""
    if args.name:
        return args.name
    suffix = f".shards{args.shards}" if args.shards > 1 else ""
    if args.mode == "closed":
        return f"loadtest.{args.pattern}.closed{suffix}"
    return f"loadtest.{args.pattern}.{args.arrival}.open{suffix}"


def _command_loadtest(args) -> int:
    from repro.loadgen import TrafficConfig, generate_trace, metrics_from_run, \
        run_load
    from repro.loadgen import report as trajectory
    from repro.serving import AsyncServingEngine

    graph, session = _loadtest_session(args)
    config = TrafficConfig(
        num_nodes=graph.num_nodes, pattern=args.pattern, skew=args.skew,
        seeds_per_request=min(args.seeds_per_request, graph.num_nodes),
        arrival=args.arrival, qps=args.qps,
        duration_seconds=args.duration,
        num_requests=args.requests if args.requests > 0 else None,
        seed=args.traffic_seed)
    trace = generate_trace(config)

    try:
        with AsyncServingEngine(session, max_batch=args.batch_size,
                                max_wait_ms=args.max_wait_ms,
                                workers=args.workers) as engine:
            run = run_load(engine, trace, mode=args.mode, clients=args.clients,
                           warmup_requests=args.warmup)
        metrics = metrics_from_run(run, deadline_ms=args.deadline_ms)
    finally:
        getattr(session, "close", lambda: None)()

    print(f"loadtest: {args.pattern} traffic (skew {args.skew}), "
          f"{args.mode} loop, {run.requests} measured requests x "
          f"{config.seeds_per_request} seeds "
          f"(+{trace.num_requests - run.requests} warm-up)")
    print(f"{'offered QPS':>18} {run.offered_qps:>10.1f}")
    print(f"{'achieved QPS':>18} {run.achieved_qps:>10.1f}")
    for key in ("p50_ms", "p95_ms", "p99_ms", "max_ms", "mean_ms"):
        print(f"{key:>18} {metrics[key]:>10.2f}")
    print(f"{'SLO violations':>18} {metrics['slo_violation_rate']:>10.1%} "
          f"(deadline {args.deadline_ms:.0f} ms)")
    print(f"{'cache hit rate':>18} {metrics['cache_hit_rate']:>10.1%}")
    print(f"{'micro-batches':>18} {run.micro_batches:>10} "
          f"({run.nodes} seed nodes, {run.giga_bit_operations:.4f} GBitOPs, "
          f"workers={args.workers})")

    if args.emit:
        meta = {"dataset": args.dataset, "scale": args.scale,
                "seed": args.seed, "traffic_seed": args.traffic_seed,
                "conv": args.conv, "pattern": args.pattern,
                "skew": args.skew, "arrival": args.arrival,
                "mode": args.mode, "clients": args.clients,
                "seeds_per_request": config.seeds_per_request,
                "warmup_requests": trace.num_requests - run.requests,
                "fanout": args.fanout, "batch_size": args.batch_size,
                "cache_size": args.cache_size, "workers": args.workers,
                "max_wait_ms": args.max_wait_ms,
                "backend": session.backend_name,
                "shards": args.shards, "partition": args.partition}
        path = trajectory.emit(args.emit, _loadtest_result_name(args),
                               metrics, meta=meta, kind="loadtest")
        print(f"trajectory written to {path}")
    return 0


def _command_streamtest(args) -> int:
    from repro.loadgen import TemporalConfig, TrafficConfig, \
        generate_temporal_trace, metrics_from_stream, run_stream
    from repro.loadgen import report as trajectory
    from repro.serving import AsyncServingEngine

    graph, session = _loadtest_session(args)
    if not session.supports_updates:
        raise SystemExit("streamtest needs a session that supports streaming "
                         "updates; sharded serving (--shards > 1) does not")
    traffic = TrafficConfig(
        num_nodes=graph.num_nodes, pattern=args.pattern, skew=args.skew,
        seeds_per_request=min(args.seeds_per_request, graph.num_nodes),
        arrival=args.arrival, qps=args.qps,
        duration_seconds=args.duration,
        num_requests=args.requests if args.requests > 0 else None,
        seed=args.traffic_seed)
    config = TemporalConfig(
        traffic=traffic, update_every=args.update_every,
        edges_per_update=args.edges_per_update,
        feature_nodes_per_update=args.feature_nodes,
        num_features=graph.num_features, seed=args.update_seed)
    trace = generate_temporal_trace(config)

    try:
        with AsyncServingEngine(session, max_batch=args.batch_size,
                                max_wait_ms=args.max_wait_ms,
                                workers=args.workers) as engine:
            result = run_stream(engine, trace, warmup_events=args.warmup)
        metrics = metrics_from_stream(result, deadline_ms=args.deadline_ms)
    finally:
        getattr(session, "close", lambda: None)()

    run = result.load
    print(f"streamtest: {args.pattern} traffic (skew {args.skew}), "
          f"{run.requests} measured queries x {traffic.seeds_per_request} "
          f"seeds, {result.updates} updates "
          f"(every {args.update_every} queries), "
          f"final graph version {result.final_version}")
    print(f"{'offered QPS':>18} {run.offered_qps:>10.1f}")
    print(f"{'achieved QPS':>18} {run.achieved_qps:>10.1f}")
    for key in ("p50_ms", "p95_ms", "p99_ms", "max_ms", "mean_ms"):
        print(f"{key:>18} {metrics[key]:>10.2f}")
    print(f"{'SLO violations':>18} {metrics['slo_violation_rate']:>10.1%} "
          f"(deadline {args.deadline_ms:.0f} ms)")
    print(f"{'failure rate':>18} {metrics['failure_rate']:>10.1%}")
    print(f"{'cache hit rate':>18} {metrics['cache_hit_rate']:>10.1%}")
    print(f"{'micro-batches':>18} {run.micro_batches:>10} "
          f"({run.nodes} seed nodes, {run.giga_bit_operations:.4f} GBitOPs, "
          f"workers={args.workers})")

    if args.emit:
        meta = {"dataset": args.dataset, "scale": args.scale,
                "seed": args.seed, "traffic_seed": args.traffic_seed,
                "update_seed": args.update_seed, "conv": args.conv,
                "pattern": args.pattern, "skew": args.skew,
                "arrival": args.arrival,
                "seeds_per_request": traffic.seeds_per_request,
                "update_every": args.update_every,
                "edges_per_update": args.edges_per_update,
                "feature_nodes_per_update": args.feature_nodes,
                "warmup_events": args.warmup, "fanout": args.fanout,
                "batch_size": args.batch_size,
                "cache_size": args.cache_size, "workers": args.workers,
                "max_wait_ms": args.max_wait_ms,
                "backend": session.backend_name}
        name = args.name or f"streamtest.{args.pattern}.{args.arrival}"
        path = trajectory.emit(args.emit, name, metrics, meta=meta,
                               kind="loadtest")
        print(f"trajectory written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    search = subparsers.add_parser("search", help="run the MixQ bit-width search")
    _add_common_model_arguments(search)
    search.add_argument("--lambda", dest="lambda_value", type=float, default=0.1,
                        help="penalty weight λ")
    search.add_argument("--bits", type=int, nargs="+", default=[2, 4, 8],
                        help="candidate bit-widths B")
    search.add_argument("--epochs", type=int, default=60, help="search epochs")
    search.add_argument("--out", default="", help="write the assignment to this JSON file")
    search.set_defaults(handler=_command_search)

    train = subparsers.add_parser("train", help="QAT-train a quantized model")
    _add_common_model_arguments(train)
    train.add_argument("--assignment", default="",
                       help="JSON assignment produced by the search command")
    train.add_argument("--uniform-bits", type=int, default=8,
                       help="uniform bit-width when no assignment file is given")
    train.add_argument("--bits", type=int, nargs="+", default=[2, 4, 8],
                       help="candidate bit-widths (metadata only)")
    train.add_argument("--epochs", type=int, default=100, help="training epochs")
    train.add_argument("--out", default="", help="write the run summary to this JSON file")
    train.set_defaults(handler=_command_train)

    table = subparsers.add_parser("table", help="print one of the paper tables")
    table.add_argument("--name", default="table3",
                       choices=["table3", "table6", "table7", "table10"])
    table.add_argument("--datasets", nargs="+", default=None,
                       help="defaults to cora (table7: reddit)")
    table.add_argument("--minibatch", action="store_true",
                       help="train with neighbor-sampled minibatches "
                            "(table3/table7 runners)")
    table.add_argument("--fanout", type=int, default=10,
                       help="neighbours sampled per layer in minibatch mode "
                            "(<= 0 means unlimited)")
    table.add_argument("--batch-size", type=int, default=256,
                       help="seed nodes per minibatch step")
    table.set_defaults(handler=_command_table)

    export = subparsers.add_parser(
        "export", help="QAT-train and export an integer serving artifact",
        description="Quantization-aware-train a model from a stored (or uniform) "
                    "bit-width assignment and export the integer deployment "
                    "artifact (npz + json sidecar) consumed by `repro predict`. "
                    "Attention families (gat/tag/transformer) export per-edge "
                    "score plans servable in block mode.")
    _add_common_model_arguments(export)
    export.add_argument("--assignment", default="",
                        help="JSON assignment produced by the search command")
    export.add_argument("--uniform-bits", type=int, default=8,
                        help="uniform bit-width when no assignment file is given "
                             "(default: 8)")
    export.add_argument("--epochs", type=int, default=100,
                        help="QAT training epochs (default: 100)")
    export.add_argument("--lr", type=float, default=0.01,
                        help="QAT learning rate (default: 0.01)")
    export.add_argument("--out", required=True,
                        help="artifact path; writes <out>.npz and <out>.json")
    export.set_defaults(handler=_command_export)

    predict = subparsers.add_parser(
        "predict", help="serve integer predictions from a saved artifact",
        description="Load a `repro export` artifact and serve seed-node requests "
                    "with integer arithmetic.  The default block mode samples each "
                    "request's receptive field (never materialising the full "
                    "adjacency); full mode runs the classic whole-graph engine.")
    predict.add_argument("--artifact", required=True,
                         help="artifact path written by `repro export`")
    predict.add_argument("--dataset", default="cora", choices=sorted(NODE_DATASETS),
                         help="graph to serve against (default: cora; must match "
                              "the export-time dataset/scale/seed)")
    predict.add_argument("--scale", type=float, default=0.2,
                         help="dataset down-scaling factor (default: 0.2)")
    predict.add_argument("--seed", type=int, default=0,
                         help="dataset / sampler random seed (default: 0)")
    predict.add_argument("--mode", default="block", choices=["block", "full"],
                         help="serving backend (default: block)")
    predict.add_argument("--fanout", type=int, default=10,
                         help="neighbours sampled per hop in block mode "
                              "(default: 10; <= 0 keeps every neighbour, which "
                              "matches full-graph logits exactly; TAG layers "
                              "consume one hop per adjacency power)")
    predict.add_argument("--batch-size", type=int, default=256,
                         help="seed nodes per coalesced micro-batch (default: 256)")
    predict.add_argument("--nodes", type=int, nargs="+", default=None,
                         help="explicit seed node ids to serve")
    predict.add_argument("--split", default="test",
                         choices=["train", "val", "test", "all"],
                         help="serve this node split when --nodes is not given "
                              "(default: test)")
    predict.add_argument("--requests", type=int, default=1,
                         help="split the served nodes into this many requests to "
                              "exercise coalescing (default: 1)")
    predict.add_argument("--cache-size", type=int, default=0,
                         help="block-cache entries for block mode (default: 0 = "
                              "off); repeat/overlapping requests reuse sampled "
                              "receptive fields with bit-identical logits")
    predict.add_argument("--cache-mb", type=float, default=256.0,
                         help="byte budget in MB for the --cache-size cache "
                              "(default: 256; <= 0 means entry-bounded only; "
                              "no effect unless --cache-size > 0) — "
                              "whole-batch entries embed feature rows, so "
                              "diverse traffic needs a byte bound too")
    predict.add_argument("--workers", type=int, default=1,
                         help="thread-pool width for micro-batches inside one "
                              "flush (default: 1 = synchronous)")
    predict.add_argument("--backend", default="",
                         help="kernel backend for the integer hot path "
                              "(see `repro.kernels`; default: the "
                              "REPRO_KERNEL_BACKEND env var, else numpy; "
                              "all backends are bit-identical)")
    _add_sharding_arguments(predict)
    predict.add_argument("--repeat", type=int, default=1,
                         help="serve the request set this many times (warms the "
                              "block cache; stats accumulate; default: 1)")
    predict.add_argument("--out", default="",
                         help="write served nodes/logits/classes to this npz file")
    predict.set_defaults(handler=_command_predict)

    loadtest = subparsers.add_parser(
        "loadtest", help="replay production-shaped traffic against the "
                         "async serving engine",
        description="Generate a deterministic, seeded traffic trace (zipfian "
                    "or uniform seed popularity; Poisson or fixed-rate "
                    "open-loop arrivals, or closed-loop N-client replay), "
                    "drive it through AsyncServingEngine over a block "
                    "session, and report p50/p95/p99/max latency, achieved "
                    "vs offered QPS, SLO-violation rate and cache hit rate. "
                    "--emit appends the result to a BENCH_*.json perf "
                    "trajectory file (see docs/benchmarks.md); CI's perf "
                    "job gates it against the committed baseline.")
    loadtest.add_argument("--artifact", default="",
                          help="serve this `repro export` artifact; when "
                               "omitted, a small uniform-bits model is "
                               "QAT-trained in memory first")
    loadtest.add_argument("--dataset", default="cora",
                          choices=sorted(NODE_DATASETS),
                          help="graph to serve against (default: cora)")
    loadtest.add_argument("--scale", type=float, default=0.2,
                          help="dataset down-scaling factor (default: 0.2)")
    loadtest.add_argument("--seed", type=int, default=0,
                          help="dataset / sampler / training seed (default: 0)")
    loadtest.add_argument("--conv", default="gcn", choices=list(CONV_CHOICES),
                          help="layer family of the in-memory model "
                               "(default: gcn; ignored with --artifact)")
    loadtest.add_argument("--hidden", type=int, default=16,
                          help="hidden width of the in-memory model "
                               "(default: 16)")
    loadtest.add_argument("--layers", type=int, default=2,
                          help="layers of the in-memory model (default: 2)")
    loadtest.add_argument("--uniform-bits", type=int, default=8,
                          help="bit-width of the in-memory model (default: 8)")
    loadtest.add_argument("--train-epochs", type=int, default=3,
                          help="QAT epochs of the in-memory model "
                               "(default: 3)")
    loadtest.add_argument("--pattern", default="zipfian",
                          choices=["zipfian", "uniform"],
                          help="seed-popularity law (default: zipfian)")
    loadtest.add_argument("--skew", type=float, default=1.1,
                          help="zipfian exponent; 0 degenerates to uniform "
                               "(default: 1.1)")
    loadtest.add_argument("--arrival", default="poisson",
                          choices=["poisson", "fixed"],
                          help="open-loop arrival process (default: poisson)")
    loadtest.add_argument("--qps", type=float, default=200.0,
                          help="offered request rate (default: 200)")
    loadtest.add_argument("--duration", type=float, default=1.0,
                          help="trace length in seconds; request count is "
                               "qps * duration unless --requests pins it "
                               "(default: 1.0)")
    loadtest.add_argument("--requests", type=int, default=0,
                          help="explicit request count (default: 0 = derive "
                               "from --qps and --duration)")
    loadtest.add_argument("--seeds-per-request", type=int, default=8,
                          help="distinct seed nodes per request (default: 8)")
    loadtest.add_argument("--mode", default="open", choices=["open", "closed"],
                          help="open-loop (submit at scheduled arrivals) or "
                               "closed-loop (N clients back-to-back) replay "
                               "(default: open)")
    loadtest.add_argument("--clients", type=int, default=4,
                          help="client threads in closed-loop mode "
                               "(default: 4)")
    loadtest.add_argument("--warmup", type=int, default=16,
                          help="requests served (then discarded, stats "
                               "reset) before the measured window "
                               "(default: 16)")
    loadtest.add_argument("--deadline-ms", type=float, default=50.0,
                          help="per-request latency SLO in milliseconds "
                               "(default: 50)")
    loadtest.add_argument("--traffic-seed", type=int, default=0,
                          help="trace generator seed — same seed, same "
                               "trace, bit for bit (default: 0)")
    loadtest.add_argument("--fanout", type=int, default=10,
                          help="block-session fanout (default: 10; <= 0 "
                               "keeps every neighbour)")
    loadtest.add_argument("--batch-size", type=int, default=256,
                          help="engine max batch / micro-batch size "
                               "(default: 256)")
    loadtest.add_argument("--cache-size", type=int, default=0,
                          help="block-cache entries (default: 0 = off)")
    loadtest.add_argument("--workers", type=int, default=1,
                          help="thread-pool width inside one flush "
                               "(default: 1)")
    loadtest.add_argument("--backend", default="",
                          help="kernel backend for the integer hot path "
                               "(see `repro.kernels`; default: the "
                               "REPRO_KERNEL_BACKEND env var, else numpy; "
                               "all backends are bit-identical)")
    _add_sharding_arguments(loadtest)
    loadtest.add_argument("--max-wait-ms", type=float, default=2.0,
                          help="deadline-batching wait of the async engine "
                               "(default: 2.0)")
    loadtest.add_argument("--emit", default="",
                          help="append the result to this BENCH_*.json "
                               "trajectory file (default: print only)")
    loadtest.add_argument("--name", default="",
                          help="result name inside the trajectory file "
                               "(default: loadtest.<pattern>.<arrival>.<mode>)")
    loadtest.set_defaults(handler=_command_loadtest)

    streamtest = subparsers.add_parser(
        "streamtest", help="replay interleaved graph updates and queries "
                           "against the async serving engine",
        description="Generate a deterministic temporal trace — the loadtest "
                    "query stream with edge additions, feature overwrites "
                    "and edge removals interleaved every N queries — and "
                    "replay it open-loop through AsyncServingEngine over a "
                    "block session with streaming updates enabled.  Reports "
                    "the loadtest latency/QPS/SLO metrics plus the applied "
                    "update count and failure rate; --emit appends them to "
                    "a BENCH_*.json trajectory (see docs/streaming.md).")
    streamtest.add_argument("--artifact", default="",
                            help="serve this `repro export` artifact; when "
                                 "omitted, a small uniform-bits model is "
                                 "QAT-trained in memory first")
    streamtest.add_argument("--dataset", default="cora",
                            choices=sorted(NODE_DATASETS),
                            help="graph to serve against (default: cora)")
    streamtest.add_argument("--scale", type=float, default=0.2,
                            help="dataset down-scaling factor (default: 0.2)")
    streamtest.add_argument("--seed", type=int, default=0,
                            help="dataset / sampler / training seed "
                                 "(default: 0)")
    streamtest.add_argument("--conv", default="gcn",
                            choices=list(CONV_CHOICES),
                            help="layer family of the in-memory model "
                                 "(default: gcn; ignored with --artifact)")
    streamtest.add_argument("--hidden", type=int, default=16,
                            help="hidden width of the in-memory model "
                                 "(default: 16)")
    streamtest.add_argument("--layers", type=int, default=2,
                            help="layers of the in-memory model (default: 2)")
    streamtest.add_argument("--uniform-bits", type=int, default=8,
                            help="bit-width of the in-memory model "
                                 "(default: 8)")
    streamtest.add_argument("--train-epochs", type=int, default=3,
                            help="QAT epochs of the in-memory model "
                                 "(default: 3)")
    streamtest.add_argument("--pattern", default="zipfian",
                            choices=["zipfian", "uniform"],
                            help="seed-popularity law (default: zipfian)")
    streamtest.add_argument("--skew", type=float, default=1.1,
                            help="zipfian exponent; 0 degenerates to uniform "
                                 "(default: 1.1)")
    streamtest.add_argument("--arrival", default="poisson",
                            choices=["poisson", "fixed"],
                            help="open-loop arrival process "
                                 "(default: poisson)")
    streamtest.add_argument("--qps", type=float, default=200.0,
                            help="offered query rate (default: 200)")
    streamtest.add_argument("--duration", type=float, default=1.0,
                            help="trace length in seconds; query count is "
                                 "qps * duration unless --requests pins it "
                                 "(default: 1.0)")
    streamtest.add_argument("--requests", type=int, default=0,
                            help="explicit query count (default: 0 = derive "
                                 "from --qps and --duration)")
    streamtest.add_argument("--seeds-per-request", type=int, default=8,
                            help="distinct seed nodes per query (default: 8)")
    streamtest.add_argument("--update-every", type=int, default=8,
                            help="one update event per this many queries; "
                                 "0 disables updates (default: 8)")
    streamtest.add_argument("--edges-per-update", type=int, default=4,
                            help="edges added/removed per edge update "
                                 "(default: 4)")
    streamtest.add_argument("--feature-nodes", type=int, default=2,
                            help="feature rows overwritten per feature "
                                 "update (default: 2)")
    streamtest.add_argument("--update-seed", type=int, default=0,
                            help="update generator seed, independent of "
                                 "--traffic-seed (default: 0)")
    streamtest.add_argument("--warmup", type=int, default=16,
                            help="events served (then discarded, stats "
                                 "reset) before the measured window "
                                 "(default: 16)")
    streamtest.add_argument("--deadline-ms", type=float, default=50.0,
                            help="per-query latency SLO in milliseconds "
                                 "(default: 50)")
    streamtest.add_argument("--traffic-seed", type=int, default=0,
                            help="trace generator seed — same seed, same "
                                 "trace, bit for bit (default: 0)")
    streamtest.add_argument("--fanout", type=int, default=10,
                            help="block-session fanout (default: 10; <= 0 "
                                 "keeps every neighbour)")
    streamtest.add_argument("--batch-size", type=int, default=256,
                            help="engine max batch / micro-batch size "
                                 "(default: 256)")
    streamtest.add_argument("--cache-size", type=int, default=0,
                            help="block-cache entries (default: 0 = off)")
    streamtest.add_argument("--workers", type=int, default=1,
                            help="thread-pool width inside one flush "
                                 "(default: 1)")
    streamtest.add_argument("--backend", default="",
                            help="kernel backend for the integer hot path "
                                 "(default: REPRO_KERNEL_BACKEND, else "
                                 "numpy; all backends are bit-identical)")
    streamtest.add_argument("--max-wait-ms", type=float, default=2.0,
                            help="deadline-batching wait of the async "
                                 "engine (default: 2.0)")
    streamtest.add_argument("--emit", default="",
                            help="append the result to this BENCH_*.json "
                                 "trajectory file (default: print only)")
    streamtest.add_argument("--name", default="",
                            help="result name inside the trajectory file "
                                 "(default: streamtest.<pattern>.<arrival>)")
    streamtest.set_defaults(handler=_command_streamtest)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
