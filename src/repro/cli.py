"""Command-line interface for the MixQ-GNN reproduction.

Three sub-commands cover the everyday workflows::

    python -m repro.cli search  --dataset cora --lambda 0.1 --out assignment.json
    python -m repro.cli train   --dataset cora --assignment assignment.json
    python -m repro.cli table   --name table3 --datasets cora

``search`` runs the differentiable bit-width search and stores the selected
assignment; ``train`` quantization-aware-trains a model from a stored (or
uniform) assignment and reports accuracy / bits / GBitOPs; ``table`` runs
one of the paper-table experiment runners at the quick scale and prints it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.mixq import MixQNodeClassifier
from repro.experiments.common import format_table
from repro.experiments.config import current_scale
from repro.experiments.results_io import load_assignment, save_assignment, save_mixq_result
from repro.graphs.datasets import NODE_DATASETS, load_node_dataset
from repro.quant.degree_quant import degree_quant_factory
from repro.quant.qmodules import (
    default_quantizer_factory,
    gcn_component_names,
    sage_component_names,
    uniform_assignment,
)


def _add_common_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cora", choices=sorted(NODE_DATASETS),
                        help="node-classification dataset stand-in")
    parser.add_argument("--conv", default="gcn", choices=["gcn", "sage"],
                        help="layer family to quantize")
    parser.add_argument("--hidden", type=int, default=16, help="hidden width")
    parser.add_argument("--layers", type=int, default=2, help="number of layers")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="dataset down-scaling factor")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--degree-quant", action="store_true",
                        help="use Degree-Quant quantizers (MixQ + DQ)")


def _build_mixq(args, graph, lambda_value: float) -> MixQNodeClassifier:
    factory = degree_quant_factory() if args.degree_quant else default_quantizer_factory
    return MixQNodeClassifier(args.conv, graph.num_features, args.hidden,
                              graph.num_classes, num_layers=args.layers,
                              bit_choices=tuple(args.bits), lambda_value=lambda_value,
                              quantizer_factory=factory, seed=args.seed)


def _command_search(args) -> int:
    graph = load_node_dataset(args.dataset, scale=args.scale, seed=args.seed)
    mixq = _build_mixq(args, graph, args.lambda_value)
    result = mixq.search(graph, epochs=args.epochs)
    print(f"selected average bit-width: {result.average_bits:.2f}")
    for component, bits in sorted(result.assignment.items()):
        print(f"  {component:<28} {bits} bits")
    if args.out:
        save_assignment(result.assignment, args.out,
                        metadata={"dataset": args.dataset, "lambda": args.lambda_value,
                                  "conv": args.conv, "hidden": args.hidden,
                                  "layers": args.layers})
        print(f"assignment written to {args.out}")
    return 0


def _command_train(args) -> int:
    graph = load_node_dataset(args.dataset, scale=args.scale, seed=args.seed)
    if args.assignment:
        assignment = load_assignment(args.assignment)
    else:
        names = gcn_component_names(args.layers) if args.conv == "gcn" \
            else sage_component_names(args.layers)
        assignment = uniform_assignment(names, args.uniform_bits)
    mixq = _build_mixq(args, graph, lambda_value=0.0)
    result = mixq.fit(graph, train_epochs=args.epochs, assignment=assignment)
    print(f"test accuracy      : {result.accuracy:.3f}")
    print(f"average bit-width  : {result.average_bits:.2f}")
    print(f"GBitOPs            : {result.giga_bit_operations:.4f}")
    if args.out:
        save_mixq_result(result, args.out)
        print(f"result written to {args.out}")
    return 0


def _command_table(args) -> int:
    from repro.experiments import ablation, node_tables

    scale = current_scale()
    if args.datasets:
        datasets = tuple(args.datasets)
    else:
        # table7 runs on the large-scale stand-ins, not the citation graphs.
        datasets = ("reddit",) if args.name == "table7" else ("cora",)
    sampled = {"minibatch": args.minibatch, "fanout": args.fanout,
               "batch_size": args.batch_size}
    if args.minibatch and args.name not in ("table3", "table7"):
        print(f"note: --minibatch is only wired into table3/table7; "
              f"{args.name} runs full-batch", file=sys.stderr)
    if args.name == "table3":
        results = node_tables.table3_node_classification(datasets=datasets, scale=scale,
                                                         **sampled)
    elif args.name == "table6":
        results = node_tables.table6_graphsage(datasets=datasets, scale=scale)
    elif args.name == "table7":
        results = node_tables.table7_large_scale(datasets=datasets, scale=scale,
                                                 **sampled)
    elif args.name == "table10":
        results = ablation.table10_random_vs_mixq(datasets=datasets, scale=scale)
    else:
        raise ValueError(f"unknown table {args.name!r}")
    for dataset, rows in results.items():
        print(format_table(f"{args.name} — {dataset}", rows))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    search = subparsers.add_parser("search", help="run the MixQ bit-width search")
    _add_common_model_arguments(search)
    search.add_argument("--lambda", dest="lambda_value", type=float, default=0.1,
                        help="penalty weight λ")
    search.add_argument("--bits", type=int, nargs="+", default=[2, 4, 8],
                        help="candidate bit-widths B")
    search.add_argument("--epochs", type=int, default=60, help="search epochs")
    search.add_argument("--out", default="", help="write the assignment to this JSON file")
    search.set_defaults(handler=_command_search)

    train = subparsers.add_parser("train", help="QAT-train a quantized model")
    _add_common_model_arguments(train)
    train.add_argument("--assignment", default="",
                       help="JSON assignment produced by the search command")
    train.add_argument("--uniform-bits", type=int, default=8,
                       help="uniform bit-width when no assignment file is given")
    train.add_argument("--bits", type=int, nargs="+", default=[2, 4, 8],
                       help="candidate bit-widths (metadata only)")
    train.add_argument("--epochs", type=int, default=100, help="training epochs")
    train.add_argument("--out", default="", help="write the run summary to this JSON file")
    train.set_defaults(handler=_command_train)

    table = subparsers.add_parser("table", help="print one of the paper tables")
    table.add_argument("--name", default="table3",
                       choices=["table3", "table6", "table7", "table10"])
    table.add_argument("--datasets", nargs="+", default=None,
                       help="defaults to cora (table7: reddit)")
    table.add_argument("--minibatch", action="store_true",
                       help="train with neighbor-sampled minibatches "
                            "(table3/table7 runners)")
    table.add_argument("--fanout", type=int, default=10,
                       help="neighbours sampled per layer in minibatch mode "
                            "(<= 0 means unlimited)")
    table.add_argument("--batch-size", type=int, default=256,
                       help="seed nodes per minibatch step")
    table.set_defaults(handler=_command_table)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
