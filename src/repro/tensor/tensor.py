"""Core :class:`Tensor` type with reverse-mode automatic differentiation.

The design is a classic tape-free autograd: every operation returns a new
``Tensor`` holding references to its parents and a closure that propagates
the upstream gradient.  Calling :meth:`Tensor.backward` performs a
topological sort of the graph and accumulates gradients into every tensor
created with ``requires_grad=True``.

Only the operations required by the MixQ-GNN reproduction are implemented,
but each has a numerically exact backward pass (verified against finite
differences in ``tests/tensor/test_autograd.py``).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether gradient tracking is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` so that it matches ``shape`` (reverses numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=np.float32) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array.  Stored as ``float32`` unless
        an integer dtype is explicitly requested.
    requires_grad:
        When true, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 dtype=np.float32, name: Optional[str] = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numel(self) -> int:
        return int(self.data.size)

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------ #
    # autograd plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        requires_grad = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires_grad, dtype=data.dtype)
        if requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data + other_t.data

        def backward(grad):
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad):
            self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data - other_t.data

        def backward(grad):
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(-grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data * other_t.data

        def backward(grad):
            self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data / other_t.data

        def backward(grad):
            self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            other_t._accumulate(
                _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)).__truediv__(self)

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data @ other_t.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad @ other_t.data.T)
            if other_t.requires_grad:
                other_t._accumulate(self.data.T @ grad)

        return Tensor._make(data, (self, other_t), backward)

    # comparison operators return plain boolean arrays (no gradient).
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad):
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad):
            self._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad):
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad):
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def clamp(self, low: Number, high: Number) -> "Tensor":
        """Clip values to ``[low, high]``; gradient is zero outside the range."""
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def round_ste(self) -> "Tensor":
        """Round to nearest integer with a straight-through gradient estimator."""
        data = np.rint(self.data)

        def backward(grad):
            self._accumulate(grad)

        return Tensor._make(data, (self,), backward)

    def floor_ste(self) -> "Tensor":
        """Floor with a straight-through gradient estimator."""
        data = np.floor(self.data)

        def backward(grad):
            self._accumulate(grad)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            grad = np.asarray(grad)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return Tensor._make(np.asarray(data, dtype=self.data.dtype), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = self.data.max(axis=axis, keepdims=True) if axis is not None else data
        mask = (self.data == expanded).astype(self.data.dtype)
        # Split the gradient evenly between ties to keep backward well-defined.
        normaliser = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()

        def backward(grad):
            grad = np.asarray(grad)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(mask / np.maximum(normaliser, 1.0) * grad)

        return Tensor._make(np.asarray(data, dtype=self.data.dtype), (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad):
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, axes: Optional[tuple] = None) -> "Tensor":
        data = self.data.T if axes is None else self.data.transpose(axes)

        def backward(grad):
            if axes is None:
                self._accumulate(grad.T)
            else:
                inverse = np.argsort(axes)
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(np.asarray(data, dtype=self.data.dtype), (self,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0, *sizes])

        def backward(grad):
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

        return Tensor._make(data, tensors, backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad):
            for position, tensor in enumerate(tensors):
                tensor._accumulate(np.take(grad, position, axis=axis))

        return Tensor._make(data, tensors, backward)

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def full(shape, value: Number, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.full(shape, value, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def eye(n: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.eye(n, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def arange(*args, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.arange(*args, dtype=np.float32), requires_grad=requires_grad)
