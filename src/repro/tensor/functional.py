"""Functional layer: activations, losses and segment reductions.

Everything here operates on :class:`~repro.tensor.tensor.Tensor` and keeps
the autograd graph intact.  Segment reductions (``segment_sum`` /
``segment_mean`` / ``segment_max``) implement the global pooling functions
used for graph-level tasks, mapping node embeddings to per-graph embeddings
through the batch assignment vector.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor.tensor import Tensor


# --------------------------------------------------------------------------- #
# activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    mask = x.data > 0
    data = np.where(mask, x.data, negative_slope * x.data)

    def backward(grad):
        x._accumulate(grad * np.where(mask, 1.0, negative_slope))

    return Tensor._make(data.astype(np.float32), (x,), backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    mask = x.data > 0
    exp_part = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    data = np.where(mask, x.data, exp_part)

    def backward(grad):
        x._accumulate(grad * np.where(mask, 1.0, exp_part + alpha))

    return Tensor._make(data.astype(np.float32), (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exponent = shifted.exp()
    return exponent / exponent.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: active only during training."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(np.float32) / keep
    return x * Tensor(mask)


# --------------------------------------------------------------------------- #
# losses
# --------------------------------------------------------------------------- #
def nll_loss(log_probabilities: Tensor, targets: np.ndarray,
             mask: Optional[np.ndarray] = None) -> Tensor:
    """Negative log-likelihood over integer class targets.

    ``mask`` selects the rows that participate in the loss (train/val/test
    masks for transductive node classification).
    """
    targets = np.asarray(targets, dtype=np.int64)
    num_rows = log_probabilities.shape[0]
    row_index = np.arange(num_rows)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        row_index = row_index[mask]
        targets = targets[mask]
    if row_index.size == 0:
        raise ValueError("nll_loss received an empty selection")
    picked = log_probabilities[(row_index, targets)]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  mask: Optional[np.ndarray] = None) -> Tensor:
    """Softmax cross-entropy over integer class targets."""
    return nll_loss(log_softmax(logits, axis=-1), targets, mask=mask)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     mask: Optional[np.ndarray] = None) -> Tensor:
    """Numerically-stable multi-label binary cross-entropy."""
    targets_t = Tensor(np.asarray(targets, dtype=np.float32))
    # log(1 + exp(x)) computed stably as max(x, 0) + log(1 + exp(-|x|))
    abs_logits = logits.abs()
    loss = logits.clamp(0.0, float("inf")) - logits * targets_t \
        + (Tensor(np.ones(1, dtype=np.float32)) + (-abs_logits).exp()).log()
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        loss = loss[mask]
    return loss.mean()


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    diff = prediction - Tensor(np.asarray(target, dtype=np.float32))
    return (diff * diff).mean()


# --------------------------------------------------------------------------- #
# segment reductions (global pooling over a batch of graphs)
# --------------------------------------------------------------------------- #
def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets given by ``segment_ids``."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    data = np.zeros((num_segments,) + x.shape[1:], dtype=np.float32)
    np.add.at(data, segment_ids, x.data)

    def backward(grad):
        x._accumulate(grad[segment_ids])

    return Tensor._make(data, (x,), backward)


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float32)
    counts = np.maximum(counts, 1.0).reshape((-1,) + (1,) * (x.ndim - 1))
    return segment_sum(x, segment_ids, num_segments) * Tensor(1.0 / counts)


def segment_max(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Per-segment maximum; gradient routed to the (first) arg-max element."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    data = np.full((num_segments,) + x.shape[1:], -np.inf, dtype=np.float32)
    np.maximum.at(data, segment_ids, x.data)
    # Empty segments would keep -inf; clamp them to zero for safety.
    empty = ~np.isin(np.arange(num_segments), segment_ids)
    if empty.any():
        data[empty] = 0.0

    is_max = (x.data == data[segment_ids])
    # Route the gradient only to the first maximal element per (segment, column).
    winner = np.zeros_like(x.data, dtype=bool)
    order = np.argsort(segment_ids, kind="stable")
    seen: dict[tuple, bool] = {}
    columns = x.data.shape[1] if x.ndim > 1 else 1
    for row in order:
        for col in range(columns):
            flag = is_max[row, col] if x.ndim > 1 else is_max[row]
            if not flag:
                continue
            key = (segment_ids[row], col)
            if key in seen:
                continue
            seen[key] = True
            if x.ndim > 1:
                winner[row, col] = True
            else:
                winner[row] = True

    def backward(grad):
        x._accumulate(grad[segment_ids] * winner)

    return Tensor._make(data, (x,), backward)


def scatter_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax of ``scores`` computed independently within each segment.

    Used by attention-based layers (GAT) where attention coefficients are
    normalised over each node's incoming edges.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    per_segment_max = np.full((num_segments,) + scores.shape[1:], -np.inf, dtype=np.float32)
    np.maximum.at(per_segment_max, segment_ids, scores.data)
    shifted = scores - Tensor(per_segment_max[segment_ids])
    exponent = shifted.exp()
    denominator = segment_sum(exponent, segment_ids, num_segments)
    return exponent / denominator[segment_ids]
