"""Deterministic random-number utilities shared across the library.

Every stochastic component (parameter initialisation, dropout, dataset
generation, Degree-Quant's Bernoulli protection masks) takes an explicit
``numpy.random.Generator``.  :func:`seed_all` builds one from an integer so
experiments are reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np


class RandomState:
    """A tiny holder for the library-wide default generator."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.generator = np.random.default_rng(seed)

    def reseed(self, seed: int) -> None:
        self.seed = seed
        self.generator = np.random.default_rng(seed)

    def spawn(self, offset: int = 1) -> np.random.Generator:
        """Return an independent generator derived from the current seed."""
        return np.random.default_rng(self.seed + offset)


_DEFAULT_STATE = RandomState(0)


def seed_all(seed: int) -> np.random.Generator:
    """Seed the library default generator and return it."""
    _DEFAULT_STATE.reseed(seed)
    return _DEFAULT_STATE.generator


def default_generator() -> np.random.Generator:
    """The library-wide default generator (seed with :func:`seed_all`)."""
    return _DEFAULT_STATE.generator
