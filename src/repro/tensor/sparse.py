"""Sparse adjacency support.

Message passing in matrix form is a sparse-dense product ``A @ H``.  The
adjacency matrix is stored as a scipy CSR matrix wrapped in
:class:`SparseTensor`; :func:`spmm` differentiates with respect to the dense
operand (``dL/dH = A.T @ dY``) which is all the GNN layers need because the
adjacency values themselves are not learnable parameters.

The quantization stack additionally needs access to the raw non-zero values
of ``A`` (to quantize them) and a way to rebuild a sparse matrix with new
values, both of which :class:`SparseTensor` exposes.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.tensor.tensor import Tensor


class SparseTensor:
    """An immutable wrapper around a ``scipy.sparse.csr_matrix``.

    Parameters
    ----------
    matrix:
        Any scipy sparse matrix (converted to CSR) or a dense numpy array.
    """

    def __init__(self, matrix: Union[sp.spmatrix, np.ndarray]):
        if isinstance(matrix, SparseTensor):
            matrix = matrix.csr
        if not sp.issparse(matrix):
            matrix = sp.csr_matrix(np.asarray(matrix, dtype=np.float32))
        self.csr: sp.csr_matrix = matrix.tocsr().astype(np.float32)
        self.csr.sum_duplicates()

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        return self.csr.shape

    @property
    def nnz(self) -> int:
        return int(self.csr.nnz)

    @property
    def values(self) -> np.ndarray:
        """The non-zero values of the matrix (CSR data array)."""
        return self.csr.data

    @property
    def row_indices(self) -> np.ndarray:
        coo = self.csr.tocoo()
        return coo.row

    @property
    def col_indices(self) -> np.ndarray:
        coo = self.csr.tocoo()
        return coo.col

    def with_values(self, values: np.ndarray) -> "SparseTensor":
        """Return a new sparse tensor with the same sparsity pattern but new values."""
        values = np.asarray(values, dtype=np.float32)
        if values.shape != self.csr.data.shape:
            raise ValueError(
                f"expected {self.csr.data.shape[0]} values, got {values.shape}")
        new = self.csr.copy()
        new.data = values
        return SparseTensor(new)

    def index_select(self, dim: int, index: np.ndarray) -> "SparseTensor":
        """Select rows (``dim=0``) or columns (``dim=1``) by integer index.

        The selection is a single vectorized CSR slice, which is what makes
        bipartite block extraction in :mod:`repro.graphs.sampling` scale-free:
        cost is proportional to the non-zeros of the selected rows/columns,
        never to the full matrix.  Indices may repeat and reorder.
        """
        index = np.asarray(index, dtype=np.int64)
        if index.ndim != 1:
            raise ValueError("index must be a 1-D integer array")
        if dim == 0:
            return SparseTensor(self.csr[index])
        if dim == 1:
            return SparseTensor(self.csr[:, index])
        raise ValueError(f"dim must be 0 or 1, got {dim}")

    def with_rows(self, rows: np.ndarray,
                  replacement: "SparseTensor") -> "SparseTensor":
        """Replace the given rows with the rows of ``replacement``.

        ``replacement`` is a ``(len(rows), num_cols)`` sparse matrix whose
        row ``i`` becomes row ``rows[i]`` of the result; every other row is
        carried over unchanged.  This is the incremental-update primitive
        behind :meth:`~repro.graphs.graph.Graph.apply_delta`: cost is
        ``O(nnz)`` array copies with no global re-sort, and — because CSR
        canonicalisation (duplicate summing, index sorting) acts on each
        row independently — the result is bit-identical to rebuilding the
        whole matrix from the edited edge list.
        """
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        old = self.csr
        num_rows = old.shape[0]
        if rows.size and (rows.min() < 0 or rows.max() >= num_rows):
            raise ValueError(f"row ids must lie in [0, {num_rows})")
        if np.unique(rows).shape[0] != rows.shape[0]:
            raise ValueError("replacement rows must be duplicate-free")
        new_rows = replacement.csr
        if new_rows.shape != (rows.shape[0], old.shape[1]):
            raise ValueError(f"replacement must have shape "
                             f"({rows.shape[0]}, {old.shape[1]}), "
                             f"got {new_rows.shape}")
        old_counts = np.diff(old.indptr).astype(np.int64)
        counts = old_counts.copy()
        counts[rows] = np.diff(new_rows.indptr)
        indptr = np.zeros(num_rows + 1, dtype=old.indptr.dtype)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=old.indices.dtype)
        data = np.empty(int(indptr[-1]), dtype=old.data.dtype)
        # Scatter kept entries: each unchanged row's slice keeps its
        # internal order, shifted to the row's new start offset.
        replaced = np.zeros(num_rows, dtype=bool)
        replaced[rows] = True
        entry_rows = np.repeat(np.arange(num_rows, dtype=np.int64), old_counts)
        within_row = np.arange(old.nnz, dtype=np.int64) \
            - np.repeat(old.indptr[:-1].astype(np.int64), old_counts)
        keep = ~replaced[entry_rows]
        destination = indptr[:-1][entry_rows] + within_row
        indices[destination[keep]] = old.indices[keep]
        data[destination[keep]] = old.data[keep]
        # Scatter replacement entries under their global row offsets.
        rep_counts = np.diff(new_rows.indptr).astype(np.int64)
        rep_rows = np.repeat(rows, rep_counts)
        rep_within = np.arange(new_rows.nnz, dtype=np.int64) \
            - np.repeat(new_rows.indptr[:-1].astype(np.int64), rep_counts)
        rep_destination = indptr[:-1][rep_rows] + rep_within
        indices[rep_destination] = new_rows.indices
        data[rep_destination] = new_rows.data
        return SparseTensor(sp.csr_matrix((data, indices, indptr),
                                          shape=old.shape))

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.csr.todense(), dtype=np.float32)

    def transpose(self) -> "SparseTensor":
        return SparseTensor(self.csr.T)

    @property
    def T(self) -> "SparseTensor":
        return self.transpose()

    def row_sum(self) -> np.ndarray:
        """Per-row sum of values (used for degrees and GCN normalisation)."""
        return np.asarray(self.csr.sum(axis=1)).reshape(-1)

    def __matmul__(self, other):
        if isinstance(other, Tensor):
            return spmm(self, other)
        if isinstance(other, SparseTensor):
            return SparseTensor(self.csr @ other.csr)
        return self.csr @ np.asarray(other)

    def __repr__(self) -> str:
        return f"SparseTensor(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------ #
    @staticmethod
    def from_edge_index(edge_index: np.ndarray, num_nodes: int,
                        edge_weight: Optional[np.ndarray] = None) -> "SparseTensor":
        """Build an adjacency matrix from a ``(2, num_edges)`` edge index."""
        edge_index = np.asarray(edge_index)
        if edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, num_edges)")
        if edge_weight is None:
            edge_weight = np.ones(edge_index.shape[1], dtype=np.float32)
        matrix = sp.csr_matrix(
            (np.asarray(edge_weight, dtype=np.float32),
             (edge_index[0], edge_index[1])),
            shape=(num_nodes, num_nodes),
        )
        return SparseTensor(matrix)

    @staticmethod
    def identity(n: int) -> "SparseTensor":
        return SparseTensor(sp.identity(n, dtype=np.float32, format="csr"))


def spmm(adjacency: SparseTensor, dense: Tensor) -> Tensor:
    """Sparse-dense matrix multiplication ``adjacency @ dense`` with autograd.

    Gradients flow only into the dense operand; the adjacency matrix is
    treated as a constant of the graph structure.
    """
    if not isinstance(adjacency, SparseTensor):
        adjacency = SparseTensor(adjacency)
    if not isinstance(dense, Tensor):
        dense = Tensor(dense)

    data = np.asarray(adjacency.csr @ dense.data, dtype=np.float32)
    adjacency_t = adjacency.csr.T.tocsr()

    def backward(grad):
        if dense.requires_grad:
            dense._accumulate(np.asarray(adjacency_t @ grad, dtype=np.float32))

    return Tensor._make(data, (dense,), backward)
