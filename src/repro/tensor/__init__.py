"""Reverse-mode autodiff tensor engine built on numpy and scipy.sparse.

This package is the computational substrate for the whole reproduction: it
provides the :class:`~repro.tensor.tensor.Tensor` type with automatic
differentiation, the functional layer (activations, losses, segment
reductions) and sparse adjacency support used by the message-passing layers.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.sparse import SparseTensor, spmm
from repro.tensor import functional
from repro.tensor.random import RandomState, seed_all

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "SparseTensor",
    "spmm",
    "functional",
    "RandomState",
    "seed_all",
]
