"""Relaxed (searchable) GNN layers — the differentiable architecture of MixQ-GNN.

Every layer mirrors its fixed-bit-width counterpart in
:mod:`repro.quant.qmodules` but replaces each quantizer by a
:class:`~repro.core.relaxed_quantizer.RelaxedQuantizer` over the candidate
bit-widths.  Component names (``input``, ``weight``, ``linear_out``,
``adjacency``, ``aggregate_out``, ...) are identical in both families, so an
assignment exported from a relaxed model plugs straight into the quantized
model constructors.

The adjacency component needs special care: the sparse values are not part
of the autograd graph, so instead of mixing quantized *values*, each
candidate bit-width produces its own quantized adjacency and the layer mixes
the resulting *aggregation outputs* with the same softmax weights.  Task
gradients therefore reach the adjacency relaxation parameters as well.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.relaxed_quantizer import RelaxedQuantizer
from repro.gnn.attention import attention_edges, attention_head_dim
from repro.gnn.gat import head_scores, merge_heads
from repro.gnn.message_passing import GraphLike, MessagePassing
from repro.gnn.models import forward_blocks
from repro.gnn.sage import mean_adjacency
from repro.gnn.tag import TAGGraphLike, hop_views
from repro.graphs.batch import GraphBatch
from repro.graphs.graph import Graph
from repro.graphs.sampling import BlockBatch, SubgraphBlock, target_features
from repro.graphs.pooling import get_pooling
from repro.nn import init
from repro.nn.activations import Dropout, ReLU
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList, Parameter
from repro.tensor import functional as F
from repro.quant.bitops import average_bits
from repro.quant.qmodules import (
    BitWidthAssignment,
    QuantizerFactory,
    default_quantizer_factory,
    set_active_block,
)
from repro.quant.quantizer import IdentityQuantizer
from repro.tensor.sparse import SparseTensor, spmm
from repro.tensor.tensor import Tensor


class _RelaxedAdjacency(Module):
    """Holds one quantized copy of an adjacency matrix per candidate bit-width.

    The cache keeps a reference to the source adjacency next to its quantized
    variants so an ``id()`` key can never be reused by a different adjacency
    after garbage collection (mini-batched graph classification creates a new
    adjacency per batch).
    """

    def __init__(self, relaxed_quantizer: RelaxedQuantizer):
        super().__init__()
        self.relaxed = relaxed_quantizer
        self._cache: dict[int, tuple[SparseTensor, List[SparseTensor]]] = {}

    def aggregate(self, adjacency: SparseTensor, messages: Tensor) -> Tensor:
        key = id(adjacency)
        entry = self._cache.get(key)
        if entry is None or entry[0] is not adjacency:
            variants = []
            for quantizer in self.relaxed.quantizers:
                if isinstance(quantizer, IdentityQuantizer):
                    variants.append(adjacency)
                    continue
                integers, params = quantizer.quantize_array(adjacency.values)
                values = quantizer.dequantize_array(integers, params)
                variants.append(adjacency.with_values(values.astype(np.float32)))
            self._cache[key] = (adjacency, variants)
            if len(self._cache) > 8:
                self._cache.pop(next(iter(self._cache)))
        self.relaxed.last_numel = adjacency.nnz
        outputs = [spmm(variant, messages) for variant in self._cache[key][1]]
        return self.relaxed.mixture_terms(outputs)


class RelaxedLinear(Module):
    """Linear layer with relaxed weight and output quantizers."""

    def __init__(self, in_features: int, out_features: int, bit_choices: Sequence[int],
                 bias: bool = True,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=bias, rng=rng)
        self.weight_relaxed = RelaxedQuantizer(bit_choices, "weight", quantizer_factory,
                                               name="weight")
        self.output_relaxed = RelaxedQuantizer(bit_choices, "activation", quantizer_factory,
                                               name="output")

    def forward(self, x: Tensor) -> Tensor:
        weight = self.weight_relaxed(self.linear.weight)
        out = x.matmul(weight)
        if self.linear.bias is not None:
            out = out + self.linear.bias
        return self.output_relaxed(out)

    def export_bits(self, prefix: str) -> BitWidthAssignment:
        return {f"{prefix}.weight": self.weight_relaxed.selected_bits(),
                f"{prefix}.output": self.output_relaxed.selected_bits()}


class RelaxedGCNConv(MessagePassing):
    """Relaxed GCN convolution (components mirror :class:`QuantGCNConv`)."""

    def __init__(self, in_features: int, out_features: int, bit_choices: Sequence[int],
                 quantize_input: bool = False, quantize_output: bool = True,
                 bias: bool = True,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input
        self.quantize_output = quantize_output
        self.linear = Linear(in_features, out_features, bias=bias, rng=rng)
        if quantize_input:
            self.input_relaxed: Optional[RelaxedQuantizer] = RelaxedQuantizer(
                bit_choices, "activation", quantizer_factory, name="input")
        else:
            self.input_relaxed = None
        self.weight_relaxed = RelaxedQuantizer(bit_choices, "weight", quantizer_factory,
                                               name="weight")
        self.linear_out_relaxed = RelaxedQuantizer(bit_choices, "activation",
                                                   quantizer_factory, name="linear_out")
        self.adjacency_relaxed = RelaxedQuantizer(bit_choices, "adjacency",
                                                  quantizer_factory, name="adjacency")
        if quantize_output:
            self.aggregate_out_relaxed: Optional[RelaxedQuantizer] = RelaxedQuantizer(
                bit_choices, "activation", quantizer_factory, name="aggregate_out")
        else:
            self.aggregate_out_relaxed = None
        self._relaxed_adjacency = _RelaxedAdjacency(self.adjacency_relaxed)

    def forward(self, x: Tensor, graph: Graph) -> Tensor:
        if self.input_relaxed is not None:
            x = self.input_relaxed(x)
        weight = self.weight_relaxed(self.linear.weight)
        transformed = x.matmul(weight)
        if self.linear.bias is not None:
            transformed = transformed + self.linear.bias
        transformed = self.linear_out_relaxed(transformed)
        aggregated = self._relaxed_adjacency.aggregate(
            graph.normalized_adjacency(), transformed)
        if self.aggregate_out_relaxed is not None:
            aggregated = self.aggregate_out_relaxed(aggregated)
        return aggregated

    def export_bits(self, prefix: str) -> BitWidthAssignment:
        assignment: BitWidthAssignment = {}
        if self.input_relaxed is not None:
            assignment[f"{prefix}.input"] = self.input_relaxed.selected_bits()
        assignment[f"{prefix}.weight"] = self.weight_relaxed.selected_bits()
        assignment[f"{prefix}.linear_out"] = self.linear_out_relaxed.selected_bits()
        assignment[f"{prefix}.adjacency"] = self.adjacency_relaxed.selected_bits()
        if self.aggregate_out_relaxed is not None:
            assignment[f"{prefix}.aggregate_out"] = self.aggregate_out_relaxed.selected_bits()
        return assignment


class RelaxedGINConv(MessagePassing):
    """Relaxed GIN convolution (components mirror :class:`QuantGINConv`)."""

    def __init__(self, in_features: int, out_features: int, bit_choices: Sequence[int],
                 quantize_input: bool = False, hidden_features: Optional[int] = None,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input
        hidden = hidden_features if hidden_features is not None else out_features
        if quantize_input:
            self.input_relaxed: Optional[RelaxedQuantizer] = RelaxedQuantizer(
                bit_choices, "activation", quantizer_factory, name="input")
        else:
            self.input_relaxed = None
        self.adjacency_relaxed = RelaxedQuantizer(bit_choices, "adjacency",
                                                  quantizer_factory, name="adjacency")
        self.aggregate_out_relaxed = RelaxedQuantizer(bit_choices, "activation",
                                                      quantizer_factory,
                                                      name="aggregate_out")
        self.mlp_first = RelaxedLinear(in_features, hidden, bit_choices,
                                       quantizer_factory=quantizer_factory, rng=rng)
        self.mlp_second = RelaxedLinear(hidden, out_features, bit_choices,
                                        quantizer_factory=quantizer_factory, rng=rng)
        self.activation = ReLU()
        self.eps = 0.0
        self._relaxed_adjacency = _RelaxedAdjacency(self.adjacency_relaxed)

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        if self.input_relaxed is not None:
            x = self.input_relaxed(x)
        aggregated = self._relaxed_adjacency.aggregate(
            graph.adjacency(add_self_loops=False), x)
        combined = target_features(x, graph) * (1.0 + self.eps) + aggregated
        combined = self.aggregate_out_relaxed(combined)
        hidden = self.activation(self.mlp_first(combined))
        return self.mlp_second(hidden)

    def export_bits(self, prefix: str) -> BitWidthAssignment:
        assignment: BitWidthAssignment = {}
        if self.input_relaxed is not None:
            assignment[f"{prefix}.input"] = self.input_relaxed.selected_bits()
        assignment[f"{prefix}.adjacency"] = self.adjacency_relaxed.selected_bits()
        assignment[f"{prefix}.aggregate_out"] = self.aggregate_out_relaxed.selected_bits()
        first = self.mlp_first.export_bits(f"{prefix}.mlp0")
        second = self.mlp_second.export_bits(f"{prefix}.mlp1")
        # Map the nested linear components onto the QuantGINConv naming scheme.
        assignment[f"{prefix}.weight_0"] = first[f"{prefix}.mlp0.weight"]
        assignment[f"{prefix}.weight_1"] = second[f"{prefix}.mlp1.weight"]
        assignment[f"{prefix}.output"] = second[f"{prefix}.mlp1.output"]
        return assignment


class RelaxedSAGEConv(MessagePassing):
    """Relaxed GraphSAGE convolution (components mirror :class:`QuantSAGEConv`)."""

    def __init__(self, in_features: int, out_features: int, bit_choices: Sequence[int],
                 quantize_input: bool = False,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input
        if quantize_input:
            self.input_relaxed: Optional[RelaxedQuantizer] = RelaxedQuantizer(
                bit_choices, "activation", quantizer_factory, name="input")
        else:
            self.input_relaxed = None
        self.adjacency_relaxed = RelaxedQuantizer(bit_choices, "adjacency",
                                                  quantizer_factory, name="adjacency")
        self.aggregate_out_relaxed = RelaxedQuantizer(bit_choices, "activation",
                                                      quantizer_factory,
                                                      name="aggregate_out")
        self.linear_root = Linear(in_features, out_features, bias=True, rng=rng)
        self.linear_neighbour = Linear(in_features, out_features, bias=False, rng=rng)
        self.weight_root_relaxed = RelaxedQuantizer(bit_choices, "weight",
                                                    quantizer_factory, name="weight_root")
        self.weight_neighbour_relaxed = RelaxedQuantizer(bit_choices, "weight",
                                                         quantizer_factory,
                                                         name="weight_neighbour")
        self.output_relaxed = RelaxedQuantizer(bit_choices, "activation",
                                               quantizer_factory, name="output")
        self._relaxed_adjacency = _RelaxedAdjacency(self.adjacency_relaxed)

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        if self.input_relaxed is not None:
            x = self.input_relaxed(x)
        aggregated = self.aggregate_out_relaxed(
            self._relaxed_adjacency.aggregate(mean_adjacency(graph), x))
        weight_root = self.weight_root_relaxed(self.linear_root.weight)
        weight_neighbour = self.weight_neighbour_relaxed(self.linear_neighbour.weight)
        out = target_features(x, graph).matmul(weight_root) + self.linear_root.bias \
            + aggregated.matmul(weight_neighbour)
        return self.output_relaxed(out)

    def export_bits(self, prefix: str) -> BitWidthAssignment:
        assignment: BitWidthAssignment = {}
        if self.input_relaxed is not None:
            assignment[f"{prefix}.input"] = self.input_relaxed.selected_bits()
        assignment[f"{prefix}.adjacency"] = self.adjacency_relaxed.selected_bits()
        assignment[f"{prefix}.aggregate_out"] = self.aggregate_out_relaxed.selected_bits()
        assignment[f"{prefix}.weight_root"] = self.weight_root_relaxed.selected_bits()
        assignment[f"{prefix}.weight_neighbour"] = self.weight_neighbour_relaxed.selected_bits()
        assignment[f"{prefix}.output"] = self.output_relaxed.selected_bits()
        return assignment


class RelaxedGATConv(MessagePassing):
    """Relaxed multi-head GAT convolution (components mirror :class:`QuantGATConv`).

    The attention coefficients live in the autograd graph (unlike sparse
    adjacency values), so the ``attention`` component is a plain relaxed
    quantizer applied to the post-softmax tensor — task gradients reach its
    relaxation parameters directly.  Heads add score columns, never
    components, so a multi-head search exports the same assignment format.
    """

    def __init__(self, in_features: int, out_features: int, bit_choices: Sequence[int],
                 quantize_input: bool = False, negative_slope: float = 0.2,
                 heads: int = 1, head_merge: str = "concat",
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input
        self.negative_slope = negative_slope
        self.heads = int(heads)
        self.head_merge = head_merge
        self.head_dim = attention_head_dim(out_features, self.heads, head_merge)
        width = self.heads * self.head_dim
        self.linear = Linear(in_features, width, bias=False, rng=rng)
        self.attention_src = Parameter(init.glorot_uniform((self.head_dim, self.heads),
                                                           rng=rng),
                                       name="attention_src")
        self.attention_dst = Parameter(init.glorot_uniform((self.head_dim, self.heads),
                                                           rng=rng),
                                       name="attention_dst")
        self.bias = Parameter(init.zeros((out_features,)), name="bias")
        if quantize_input:
            self.input_relaxed: Optional[RelaxedQuantizer] = RelaxedQuantizer(
                bit_choices, "activation", quantizer_factory, name="input")
        else:
            self.input_relaxed = None
        self.weight_relaxed = RelaxedQuantizer(bit_choices, "weight", quantizer_factory,
                                               name="weight")
        self.linear_out_relaxed = RelaxedQuantizer(bit_choices, "activation",
                                                   quantizer_factory, name="linear_out")
        self.attention_relaxed = RelaxedQuantizer(bit_choices, "adjacency",
                                                  quantizer_factory, name="attention")
        self.aggregate_out_relaxed = RelaxedQuantizer(bit_choices, "activation",
                                                      quantizer_factory,
                                                      name="aggregate_out")

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        if self.input_relaxed is not None:
            x = self.input_relaxed(x)
        weight = self.weight_relaxed(self.linear.weight)
        transformed = self.linear_out_relaxed(x.matmul(weight))
        edges = attention_edges(graph)
        score_src = head_scores(transformed, self.attention_src,
                                self.heads, self.head_dim)
        score_dst = head_scores(transformed, self.attention_dst,
                                self.heads, self.head_dim)
        edge_scores = F.leaky_relu(score_src[edges.src] + score_dst[edges.dst],
                                   negative_slope=self.negative_slope)
        attention = F.scatter_softmax(edge_scores, edges.dst, edges.num_dst)
        attention = self.attention_relaxed(attention)
        per_head = transformed.reshape(-1, self.heads, self.head_dim)
        messages = per_head[edges.src] * attention.reshape(-1, self.heads, 1)
        aggregated = F.segment_sum(messages, edges.dst, edges.num_dst)
        merged = merge_heads(aggregated, self.heads, self.head_dim,
                             self.head_merge)
        return self.aggregate_out_relaxed(merged + self.bias)

    def export_bits(self, prefix: str) -> BitWidthAssignment:
        assignment: BitWidthAssignment = {}
        if self.input_relaxed is not None:
            assignment[f"{prefix}.input"] = self.input_relaxed.selected_bits()
        assignment[f"{prefix}.weight"] = self.weight_relaxed.selected_bits()
        assignment[f"{prefix}.linear_out"] = self.linear_out_relaxed.selected_bits()
        assignment[f"{prefix}.attention"] = self.attention_relaxed.selected_bits()
        assignment[f"{prefix}.aggregate_out"] = self.aggregate_out_relaxed.selected_bits()
        return assignment


class RelaxedTransformerConv(MessagePassing):
    """Relaxed multi-head Transformer convolution (mirrors
    :class:`QuantTransformerConv`)."""

    def __init__(self, in_features: int, out_features: int, bit_choices: Sequence[int],
                 quantize_input: bool = False, heads: int = 1,
                 head_merge: str = "concat",
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input
        self.heads = int(heads)
        self.head_merge = head_merge
        self.head_dim = attention_head_dim(out_features, self.heads, head_merge)
        width = self.heads * self.head_dim
        self.query = Linear(in_features, width, bias=False, rng=rng)
        self.key = Linear(in_features, width, bias=False, rng=rng)
        self.value = Linear(in_features, width, bias=True, rng=rng)
        if quantize_input:
            self.input_relaxed: Optional[RelaxedQuantizer] = RelaxedQuantizer(
                bit_choices, "activation", quantizer_factory, name="input")
        else:
            self.input_relaxed = None
        self.weight_query_relaxed = RelaxedQuantizer(bit_choices, "weight",
                                                     quantizer_factory,
                                                     name="weight_query")
        self.weight_key_relaxed = RelaxedQuantizer(bit_choices, "weight",
                                                   quantizer_factory, name="weight_key")
        self.weight_value_relaxed = RelaxedQuantizer(bit_choices, "weight",
                                                     quantizer_factory,
                                                     name="weight_value")
        self.value_out_relaxed = RelaxedQuantizer(bit_choices, "activation",
                                                  quantizer_factory, name="value_out")
        self.attention_relaxed = RelaxedQuantizer(bit_choices, "adjacency",
                                                  quantizer_factory, name="attention")
        self.aggregate_out_relaxed = RelaxedQuantizer(bit_choices, "activation",
                                                      quantizer_factory,
                                                      name="aggregate_out")

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        if self.input_relaxed is not None:
            x = self.input_relaxed(x)
        queries = x.matmul(self.weight_query_relaxed(self.query.weight))
        keys = x.matmul(self.weight_key_relaxed(self.key.weight))
        values = x.matmul(self.weight_value_relaxed(self.value.weight)) \
            + self.value.bias
        values = self.value_out_relaxed(values)
        edges = attention_edges(graph)
        queries = queries.reshape(-1, self.heads, self.head_dim)
        keys = keys.reshape(-1, self.heads, self.head_dim)
        values = values.reshape(-1, self.heads, self.head_dim)
        scale = 1.0 / np.sqrt(self.head_dim)
        edge_scores = (queries[edges.dst] * keys[edges.src]).sum(axis=-1) * scale
        attention = F.scatter_softmax(edge_scores, edges.dst, edges.num_dst)
        attention = self.attention_relaxed(attention)
        messages = values[edges.src] * attention.reshape(-1, self.heads, 1)
        aggregated = F.segment_sum(messages, edges.dst, edges.num_dst)
        merged = merge_heads(aggregated, self.heads, self.head_dim,
                             self.head_merge)
        return self.aggregate_out_relaxed(merged)

    def export_bits(self, prefix: str) -> BitWidthAssignment:
        assignment: BitWidthAssignment = {}
        if self.input_relaxed is not None:
            assignment[f"{prefix}.input"] = self.input_relaxed.selected_bits()
        assignment[f"{prefix}.weight_query"] = self.weight_query_relaxed.selected_bits()
        assignment[f"{prefix}.weight_key"] = self.weight_key_relaxed.selected_bits()
        assignment[f"{prefix}.weight_value"] = self.weight_value_relaxed.selected_bits()
        assignment[f"{prefix}.value_out"] = self.value_out_relaxed.selected_bits()
        assignment[f"{prefix}.attention"] = self.attention_relaxed.selected_bits()
        assignment[f"{prefix}.aggregate_out"] = self.aggregate_out_relaxed.selected_bits()
        return assignment


class RelaxedTAGConv(MessagePassing):
    """Relaxed TAG convolution (components mirror :class:`QuantTAGConv`).

    One relaxed weight quantizer per adjacency power; the sparse adjacency
    mixes aggregation *outputs* through :class:`_RelaxedAdjacency` (shared
    across hops), and every propagated tensor passes the shared ``hop_out``
    relaxation.  Consumes ``hops`` stacked blocks per layer in minibatch
    mode, exactly like the float :class:`~repro.gnn.tag.TAGConv`.
    """

    def __init__(self, in_features: int, out_features: int, bit_choices: Sequence[int],
                 quantize_input: bool = False, hops: int = 3,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if hops < 1:
            raise ValueError("RelaxedTAGConv needs at least one hop")
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input
        self.hops = hops
        self.linears = ModuleList(
            [Linear(in_features, out_features, bias=(k == 0), rng=rng)
             for k in range(hops + 1)])
        if quantize_input:
            self.input_relaxed: Optional[RelaxedQuantizer] = RelaxedQuantizer(
                bit_choices, "activation", quantizer_factory, name="input")
        else:
            self.input_relaxed = None
        self.adjacency_relaxed = RelaxedQuantizer(bit_choices, "adjacency",
                                                  quantizer_factory, name="adjacency")
        self.hop_out_relaxed = RelaxedQuantizer(bit_choices, "activation",
                                                quantizer_factory, name="hop_out")
        self.weight_relaxeds = ModuleList(
            [RelaxedQuantizer(bit_choices, "weight", quantizer_factory,
                              name=f"weight_{k}") for k in range(hops + 1)])
        self.output_relaxed = RelaxedQuantizer(bit_choices, "activation",
                                               quantizer_factory, name="output")
        self._relaxed_adjacency = _RelaxedAdjacency(self.adjacency_relaxed)

    def forward(self, x: Tensor, graph: TAGGraphLike) -> Tensor:
        if self.input_relaxed is not None:
            x = self.input_relaxed(x)
        views = hop_views(graph, self.hops)
        last = views[-1]
        num_final = last.num_dst if isinstance(last, SubgraphBlock) else None

        def final_rows(tensor: Tensor) -> Tensor:
            return tensor if num_final is None else tensor[:num_final]

        weight = self.weight_relaxeds[0](self.linears[0].weight)
        output = final_rows(x).matmul(weight) + self.linears[0].bias
        propagated = x
        for hop, view in enumerate(views, start=1):
            propagated = self._relaxed_adjacency.aggregate(
                view.normalized_adjacency(), propagated)
            if isinstance(view, SubgraphBlock):
                # Hop outputs are row-indexed by this hop's target side, not
                # by the layer's input block (the one forward_blocks set).
                set_active_block(self.hop_out_relaxed, view)
            propagated = self.hop_out_relaxed(propagated)
            weight = self.weight_relaxeds[hop](self.linears[hop].weight)
            output = output + final_rows(propagated).matmul(weight)
        if num_final is not None:
            set_active_block(self.output_relaxed, views[-1])
        return self.output_relaxed(output)

    def export_bits(self, prefix: str) -> BitWidthAssignment:
        assignment: BitWidthAssignment = {}
        if self.input_relaxed is not None:
            assignment[f"{prefix}.input"] = self.input_relaxed.selected_bits()
        assignment[f"{prefix}.adjacency"] = self.adjacency_relaxed.selected_bits()
        assignment[f"{prefix}.hop_out"] = self.hop_out_relaxed.selected_bits()
        for k, relaxed in enumerate(self.weight_relaxeds):
            assignment[f"{prefix}.weight_{k}"] = relaxed.selected_bits()
        assignment[f"{prefix}.output"] = self.output_relaxed.selected_bits()
        return assignment


class RelaxedNodeClassifier(Module):
    """Relaxed node classifier — the searchable architecture of Algorithm 1."""

    def __init__(self, convs: List[MessagePassing], dropout: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.convs = ModuleList(convs)
        self.activation = ReLU()
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, graph, x: Optional[Tensor] = None) -> Tensor:
        if isinstance(graph, BlockBatch):
            return forward_blocks(self, graph, x)
        if x is None:
            x = Tensor(graph.x)
        num_layers = len(self.convs)
        for index, conv in enumerate(self.convs):
            x = conv(x, graph)
            if index < num_layers - 1:
                x = self.activation(x)
                x = self.dropout(x)
        return x

    def export_assignment(self) -> BitWidthAssignment:
        """Arg-max bit-width per component (the sequence ``S`` of Algorithm 1)."""
        assignment: BitWidthAssignment = {}
        for index, conv in enumerate(self.convs):
            assignment.update(conv.export_bits(f"conv{index}"))
        return assignment

    def selected_average_bits(self) -> float:
        return average_bits(self.export_assignment().values())


class RelaxedGraphClassifier(Module):
    """Relaxed GIN graph classifier (searchable counterpart of Table 8's model)."""

    def __init__(self, in_features: int, hidden_features: int, num_classes: int,
                 bit_choices: Sequence[int], num_layers: int = 5,
                 pooling: str = "max", dropout: float = 0.5,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        convs: List[MessagePassing] = []
        for index in range(num_layers):
            fan_in = in_features if index == 0 else hidden_features
            convs.append(RelaxedGINConv(fan_in, hidden_features, bit_choices,
                                        quantize_input=(index == 0),
                                        quantizer_factory=quantizer_factory, rng=rng))
        self.convs = ModuleList(convs)
        self.pooling_name = pooling
        self._pool = get_pooling(pooling)
        self.head_hidden = RelaxedLinear(hidden_features, hidden_features, bit_choices,
                                         quantizer_factory=quantizer_factory, rng=rng)
        self.head_out = RelaxedLinear(hidden_features, num_classes, bit_choices,
                                      quantizer_factory=quantizer_factory, rng=rng)
        self.activation = ReLU()
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, batch: GraphBatch, x: Optional[Tensor] = None) -> Tensor:
        if x is None:
            x = Tensor(batch.x)
        for conv in self.convs:
            x = conv(x, batch)
            x = self.activation(x)
        pooled = self._pool(x, batch.batch, batch.num_graphs)
        hidden = self.activation(self.head_hidden(pooled))
        hidden = self.dropout(hidden)
        return self.head_out(hidden)

    def export_assignment(self) -> BitWidthAssignment:
        assignment: BitWidthAssignment = {}
        for index, conv in enumerate(self.convs):
            assignment.update(conv.export_bits(f"conv{index}"))
        assignment.update(self.head_hidden.export_bits("head0"))
        assignment.update(self.head_out.export_bits("head1"))
        return assignment

    def selected_average_bits(self) -> float:
        return average_bits(self.export_assignment().values())
