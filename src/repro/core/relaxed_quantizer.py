"""Continuous relaxation of the bit-width choice (paper Equation 6).

Every quantizable component gets one :class:`RelaxedQuantizer` holding one
quantizer per candidate bit-width ``b_i`` and a learnable relaxation
parameter vector ``alpha``.  The forward pass produces

``o(x) = sum_i softmax(alpha)_i * Q^f_{b_i}(x)``

so gradients flow both into the network weights (through the STE fake
quantizers) and into ``alpha`` (through the mixture weights).  After the
search, :meth:`selected_bits` returns the arg-max bit-width.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.module import Module, ModuleList, Parameter
from repro.quant.qmodules import QuantizerFactory, default_quantizer_factory
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class RelaxedQuantizer(Module):
    """Softmax mixture over fake quantizers with different bit-widths.

    Parameters
    ----------
    bit_choices:
        Candidate bit-widths ``B`` (e.g. ``[2, 4, 8]``).
    kind:
        Quantizer kind forwarded to the factory: ``"activation"``,
        ``"weight"`` or ``"adjacency"``.
    quantizer_factory:
        Builds the underlying quantizer for each bit-width; defaults to the
        native QAT quantizers, and accepts the Degree-Quant factory for the
        "MixQ + DQ" integration.
    alpha_init:
        Initial value of every relaxation parameter (uniform mixture).
    """

    def __init__(self, bit_choices: Sequence[int], kind: str = "activation",
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 alpha_init: float = 0.0, name: Optional[str] = None):
        super().__init__()
        if not bit_choices:
            raise ValueError("bit_choices must not be empty")
        self.bit_choices: List[int] = [int(b) for b in bit_choices]
        self.kind = kind
        self.component_name = name
        self.quantizers = ModuleList(
            [quantizer_factory(bits, kind) for bits in self.bit_choices])
        self.alpha = Parameter(
            np.full(len(self.bit_choices), alpha_init, dtype=np.float32), name="alpha")
        #: Number of elements of the last tensor seen; used by the penalty C(T).
        self.last_numel: int = 0

    # ------------------------------------------------------------------ #
    def probabilities(self) -> Tensor:
        """The softmax mixture weights as a differentiable tensor."""
        return F.softmax(self.alpha, axis=-1)

    def probability_values(self) -> np.ndarray:
        exps = np.exp(self.alpha.data - self.alpha.data.max())
        return exps / exps.sum()

    def expected_bits(self) -> Tensor:
        """Differentiable expected bit-width ``sum_i p_i b_i``."""
        bits = Tensor(np.asarray(self.bit_choices, dtype=np.float32))
        return (self.probabilities() * bits).sum()

    def expected_bits_value(self) -> float:
        return float(np.dot(self.probability_values(), self.bit_choices))

    def selected_bits(self) -> int:
        """Arg-max bit-width (the final selection after the search)."""
        return int(self.bit_choices[int(np.argmax(self.alpha.data))])

    def penalty(self) -> Tensor:
        """The component's contribution to ``C`` (Equation 8), in megabytes."""
        numel = max(self.last_numel, 1)
        return self.expected_bits() * (numel / (1024.0 * 8.0 * 1024.0))

    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        self.last_numel = x.numel()
        probabilities = self.probabilities()
        output = None
        for index, quantizer in enumerate(self.quantizers):
            term = quantizer(x) * probabilities[index]
            output = term if output is None else output + term
        return output

    def mixture_terms(self, values: List[Tensor]) -> Tensor:
        """Mix externally-computed per-bit-width results with the current weights.

        Used by the relaxed message-passing layers where each candidate
        bit-width produces a separate aggregation result (one quantized
        adjacency per choice) that must be blended by the same softmax.
        """
        if len(values) != len(self.bit_choices):
            raise ValueError("one value per bit choice is required")
        probabilities = self.probabilities()
        output = None
        for index, value in enumerate(values):
            term = value * probabilities[index]
            output = term if output is None else output + term
        return output

    def __repr__(self) -> str:
        return (f"RelaxedQuantizer(bits={self.bit_choices}, kind={self.kind!r}, "
                f"selected={self.selected_bits()})")
