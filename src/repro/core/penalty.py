"""The memory-proportional penalty ``C(T)`` (paper Equations 7 and 8).

For a tensor ``T`` produced during inference, the penalty is the expected
bit-width (under the relaxation softmax) times the number of elements,
normalised from bits to megabytes.  The total penalty of an architecture is
the sum over every relaxed quantizer; it enters the training objective as
``L + lambda * sum_i C(T_i)`` (the Lagrangian form of the constrained
problem in Equation 7).
"""

from __future__ import annotations

from typing import List

from repro.core.relaxed_quantizer import RelaxedQuantizer
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


def relaxed_quantizers(model: Module) -> List[RelaxedQuantizer]:
    """All relaxed quantizers of a model in traversal order."""
    return [module for module in model.modules() if isinstance(module, RelaxedQuantizer)]


def memory_penalty_mb(quantizer: RelaxedQuantizer) -> Tensor:
    """One component's ``C(T)`` in megabytes (differentiable)."""
    return quantizer.penalty()


def total_penalty(model: Module) -> Tensor:
    """``sum_i C(T_i)`` over every relaxed quantizer of ``model``.

    The model must have been run forward at least once so each quantizer has
    observed its tensor size (``last_numel``); before that the penalty is a
    small constant and carries no useful signal.
    """
    quantizers = relaxed_quantizers(model)
    if not quantizers:
        raise ValueError("model has no RelaxedQuantizer modules")
    total = None
    for quantizer in quantizers:
        term = memory_penalty_mb(quantizer)
        total = term if total is None else total + term
    return total


def expected_average_bits(model: Module) -> float:
    """Mean expected bit-width over all relaxed components (progress metric)."""
    quantizers = relaxed_quantizers(model)
    if not quantizers:
        return 32.0
    return float(sum(q.expected_bits_value() for q in quantizers) / len(quantizers))


def alpha_parameters(model: Module) -> List:
    """The relaxation parameters of all relaxed quantizers (for optimizer groups)."""
    return [quantizer.alpha for quantizer in relaxed_quantizers(model)]


def architecture_parameters(model: Module) -> List:
    """All parameters of ``model`` except the relaxation parameters."""
    alphas = {id(alpha) for alpha in alpha_parameters(model)}
    return [parameter for parameter in model.parameters() if id(parameter) not in alphas]
