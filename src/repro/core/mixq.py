"""High-level MixQ-GNN API (search → finalize → quantization-aware training).

These classes tie the whole pipeline of Figure 7 together:

1. **Relaxation** — build the relaxed architecture over the bit choices ``B``.
2. **Bit-width selection** — run the differentiable search with the penalty
   weight ``lambda``.
3. **Quantized architecture** — instantiate the fixed-bit-width quantized
   model from the selected assignment.
4. **Quantization-aware training** — train the quantized model on the task.
5. **Evaluation** — report accuracy, average bit-width and (G)BitOPs.

The ``quantizer_factory`` hook selects the underlying quantizers — the
default native QAT quantizers, or the Degree-Quant factory for the
"MixQ + DQ" combination of Tables 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.build import (
    build_relaxed_graph_classifier,
    build_relaxed_node_classifier,
    layer_dimensions,
)
from repro.core.selection import (
    BitWidthSearchResult,
    search_graph_bitwidths,
    search_node_bitwidths,
)
from repro.graphs.graph import Graph
from repro.quant.bitops import BitOpsCounter, average_bits
from repro.quant.degree_quant import DegreeQuantizer, attach_degree_probabilities
from repro.quant.qmodules import (
    BitWidthAssignment,
    QuantGraphClassifier,
    QuantNodeClassifier,
    QuantizerFactory,
    default_quantizer_factory,
)
from repro.training.minibatch import MinibatchTrainer
from repro.training.trainer import (
    NodeTrainingResult,
    evaluate_graph_classifier,
    evaluate_node_classifier,
    train_graph_classifier,
    train_node_classifier,
)


@dataclass
class MixQResult:
    """End-to-end result of a MixQ-GNN run (one row of the paper's tables)."""

    accuracy: float
    average_bits: float
    giga_bit_operations: float
    assignment: BitWidthAssignment
    search: Optional[BitWidthSearchResult] = None

    def __repr__(self) -> str:
        return (f"MixQResult(accuracy={self.accuracy:.3f}, bits={self.average_bits:.2f}, "
                f"GBitOPs={self.giga_bit_operations:.3f})")


class MixQNodeClassifier:
    """MixQ-GNN for transductive node classification.

    Parameters
    ----------
    conv_type:
        ``"gcn"`` / ``"gin"`` / ``"sage"`` / ``"gat"`` / ``"tag"`` /
        ``"transformer"`` — the layer family to quantize.
    in_features / hidden_features / num_classes / num_layers:
        Architecture specification.
    bit_choices:
        The candidate bit-width set ``B`` (e.g. ``(2, 4, 8)``).
    lambda_value:
        Penalty weight; negative epsilon values reproduce the paper's
        ``MixQ(λ=-ε)`` accuracy-first configuration, larger positive values
        compress harder.
    quantizer_factory:
        Quantizer backend; pass :func:`repro.quant.degree_quant.degree_quant_factory`
        for the MixQ + DQ combination.
    hops:
        Adjacency powers per TAG layer (ignored by the other families).
        In minibatch mode a TAG layer consumes ``hops`` sampled blocks, so
        the neighbor sampler emits ``num_layers * hops`` blocks per batch.
    heads / head_merge:
        Attention heads per GAT / Transformer layer (ignored by the other
        families).  Hidden layers merge head outputs by ``head_merge``
        (``concat`` by default), the output layer by ``mean``; the merged
        layer widths never change, so the search space and the assignment
        format are identical to the single-head setup.
    """

    def __init__(self, conv_type: str, in_features: int, hidden_features: int,
                 num_classes: int, num_layers: int = 2,
                 bit_choices: Sequence[int] = (2, 4, 8),
                 lambda_value: float = -1e-8, dropout: float = 0.5,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 hops: int = 3, heads: int = 1, head_merge: str = "concat",
                 seed: int = 0):
        self.conv_type = conv_type
        self.layer_dims = layer_dimensions(in_features, hidden_features, num_classes,
                                           num_layers)
        self.bit_choices = [int(b) for b in bit_choices]
        self.lambda_value = float(lambda_value)
        self.dropout = dropout
        self.quantizer_factory = quantizer_factory
        self.hops = int(hops)
        self.heads = int(heads)
        self.head_merge = head_merge
        self.seed = seed
        self.search_result: Optional[BitWidthSearchResult] = None
        self.quantized_model: Optional[QuantNodeClassifier] = None

    # ------------------------------------------------------------------ #
    def _rng(self, offset: int = 0) -> np.random.Generator:
        return np.random.default_rng(self.seed + offset)

    def _total_hops(self) -> int:
        """Blocks the sampler must emit per batch (hops, not layers)."""
        per_layer = self.hops if self.conv_type == "tag" else 1
        return len(self.layer_dims) * per_layer

    def search(self, graph: Graph, epochs: int = 60, lr: float = 0.01,
               multilabel: bool = False, minibatch: bool = False,
               fanout: Optional[int] = 10,
               batch_size: int = 256) -> BitWidthSearchResult:
        """Stage 3-4 of Figure 7: relaxation and bit-width selection.

        ``minibatch=True`` runs the search over neighbor-sampled blocks
        (``fanout`` neighbours per layer, ``batch_size`` seeds per step);
        the relaxed quantizers are untouched, so the selected assignment
        format is identical to the full-batch search.
        """
        relaxed = build_relaxed_node_classifier(
            self.conv_type, self.layer_dims, self.bit_choices, dropout=self.dropout,
            quantizer_factory=self.quantizer_factory, hops=self.hops,
            heads=self.heads, head_merge=self.head_merge,
            rng=self._rng(1))
        self._configure_degree_quant(relaxed, graph)
        sampler = None
        if minibatch:
            from repro.graphs.sampling import NeighborSampler

            sampler = NeighborSampler(graph, fanout, batch_size=batch_size,
                                      num_layers=self._total_hops(),
                                      seed_nodes=graph.train_mask, seed=self.seed)
        self.search_result = search_node_bitwidths(
            relaxed, graph, self.lambda_value, epochs=epochs, lr=lr,
            multilabel=multilabel, sampler=sampler)
        return self.search_result

    def finalize(self, assignment: Optional[BitWidthAssignment] = None
                 ) -> QuantNodeClassifier:
        """Stage 5 of Figure 7: build the quantized architecture."""
        if assignment is None:
            if self.search_result is None:
                raise RuntimeError("run search() first or provide an assignment")
            assignment = self.search_result.assignment
        self.quantized_model = QuantNodeClassifier.from_assignment(
            self.layer_dims, self.conv_type, assignment, dropout=self.dropout,
            quantizer_factory=self.quantizer_factory, hops=self.hops,
            heads=self.heads, head_merge=self.head_merge,
            rng=self._rng(2))
        return self.quantized_model

    def fit(self, graph: Graph, search_epochs: int = 60, train_epochs: int = 100,
            lr: float = 0.01, multilabel: bool = False,
            assignment: Optional[BitWidthAssignment] = None,
            minibatch: bool = False, fanout: Optional[int] = 10,
            batch_size: int = 256) -> MixQResult:
        """Full pipeline: search, finalize, QAT training, evaluation.

        ``minibatch=True`` routes both the bit-width search and the final
        QAT training through the neighbor-sampling engine; evaluation stays
        exact (layer-wise full-graph inference).
        """
        if assignment is None:
            self.search(graph, epochs=search_epochs, lr=lr, multilabel=multilabel,
                        minibatch=minibatch, fanout=fanout, batch_size=batch_size)
            assignment = self.search_result.assignment
        model = self.finalize(assignment)
        self._configure_degree_quant(model, graph)
        if minibatch:
            trainer = MinibatchTrainer(model, fanouts=fanout, batch_size=batch_size,
                                       lr=lr, multilabel=multilabel, seed=self.seed)
            result: NodeTrainingResult = trainer.fit(graph, epochs=train_epochs)
        else:
            result = train_node_classifier(
                model, graph, epochs=train_epochs, lr=lr, multilabel=multilabel)
        counter: BitOpsCounter = model.bit_operations(graph)
        return MixQResult(
            accuracy=result.test_accuracy,
            average_bits=model.average_bits(),
            giga_bit_operations=counter.giga_bit_operations(),
            assignment=assignment,
            search=self.search_result,
        )

    def evaluate(self, graph: Graph, multilabel: bool = False) -> float:
        if self.quantized_model is None:
            raise RuntimeError("no quantized model; call fit() or finalize() first")
        return evaluate_node_classifier(self.quantized_model, graph,
                                        graph.test_mask, multilabel)

    def _configure_degree_quant(self, model, graph: Graph) -> None:
        """If the factory produced DegreeQuantizers, attach degree probabilities."""
        if any(isinstance(module, DegreeQuantizer) for module in model.modules()):
            attach_degree_probabilities(model, graph)


class MixQGraphClassifier:
    """MixQ-GNN for graph classification (the 5-layer GIN setup of Table 8)."""

    def __init__(self, in_features: int, hidden_features: int, num_classes: int,
                 num_layers: int = 5, bit_choices: Sequence[int] = (4, 8),
                 lambda_value: float = -1e-8, pooling: str = "max",
                 dropout: float = 0.5,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 seed: int = 0):
        self.in_features = in_features
        self.hidden_features = hidden_features
        self.num_classes = num_classes
        self.num_layers = num_layers
        self.bit_choices = [int(b) for b in bit_choices]
        self.lambda_value = float(lambda_value)
        self.pooling = pooling
        self.dropout = dropout
        self.quantizer_factory = quantizer_factory
        self.seed = seed
        self.search_result: Optional[BitWidthSearchResult] = None
        self.quantized_model: Optional[QuantGraphClassifier] = None

    def _rng(self, offset: int = 0) -> np.random.Generator:
        return np.random.default_rng(self.seed + offset)

    def search(self, graphs: Sequence[Graph], epochs: int = 10, lr: float = 0.01,
               batch_size: int = 32) -> BitWidthSearchResult:
        relaxed = build_relaxed_graph_classifier(
            self.in_features, self.hidden_features, self.num_classes, self.bit_choices,
            num_layers=self.num_layers, pooling=self.pooling, dropout=self.dropout,
            quantizer_factory=self.quantizer_factory, rng=self._rng(1))
        self.search_result = search_graph_bitwidths(
            relaxed, graphs, self.lambda_value, epochs=epochs, lr=lr,
            batch_size=batch_size, rng=self._rng(3))
        return self.search_result

    def finalize(self, assignment: Optional[BitWidthAssignment] = None
                 ) -> QuantGraphClassifier:
        if assignment is None:
            if self.search_result is None:
                raise RuntimeError("run search() first or provide an assignment")
            assignment = self.search_result.assignment
        self.quantized_model = QuantGraphClassifier(
            self.in_features, self.hidden_features, self.num_classes, assignment,
            num_layers=self.num_layers, pooling=self.pooling, dropout=self.dropout,
            quantizer_factory=self.quantizer_factory, rng=self._rng(2))
        return self.quantized_model

    def fit(self, train_graphs: Sequence[Graph], test_graphs: Sequence[Graph],
            search_epochs: int = 10, train_epochs: int = 30, lr: float = 0.01,
            batch_size: int = 32,
            assignment: Optional[BitWidthAssignment] = None) -> MixQResult:
        if assignment is None:
            self.search(train_graphs, epochs=search_epochs, lr=lr, batch_size=batch_size)
            assignment = self.search_result.assignment
        model = self.finalize(assignment)
        train_graph_classifier(model, train_graphs, test_graphs, epochs=train_epochs,
                               lr=lr, batch_size=batch_size, rng=self._rng(4))
        accuracy = evaluate_graph_classifier(model, test_graphs, batch_size)
        from repro.graphs.batch import GraphBatch

        reference = GraphBatch(list(test_graphs)[:min(len(test_graphs), 32)])
        counter = model.bit_operations(reference)
        return MixQResult(
            accuracy=accuracy,
            average_bits=model.average_bits(),
            giga_bit_operations=counter.giga_bit_operations(),
            assignment=assignment,
            search=self.search_result,
        )
