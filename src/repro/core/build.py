"""Building relaxed architectures ("Build Relaxed Architecture", Algorithm 1).

Algorithm 1 walks the modules of a base architecture and adds input, output,
aggregation and parameter quantizers with ``|B|`` choices each.  Since the
layer families the paper quantizes (GCN, GIN, GraphSAGE) are known, the
builders construct the relaxed layers directly from an architecture
specification — one relaxed quantizer per component, input quantizers only
on the first module, aggregation quantizers only on message-passing layers,
weight quantizers wherever learnable parameters exist.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.relaxed_modules import (
    RelaxedGATConv,
    RelaxedGCNConv,
    RelaxedGINConv,
    RelaxedGraphClassifier,
    RelaxedNodeClassifier,
    RelaxedSAGEConv,
    RelaxedTAGConv,
    RelaxedTransformerConv,
)
from repro.gnn.message_passing import MessagePassing
from repro.gnn.models import head_merge_for_layer
from repro.quant.qmodules import QuantizerFactory, default_quantizer_factory

_RELAXED_CONVS = {"gcn": RelaxedGCNConv, "gin": RelaxedGINConv,
                  "sage": RelaxedSAGEConv, "gat": RelaxedGATConv,
                  "tag": RelaxedTAGConv, "transformer": RelaxedTransformerConv}


def layer_dimensions(in_features: int, hidden_features: int, num_classes: int,
                     num_layers: int) -> List[Tuple[int, int]]:
    """Feature dimensions of an ``num_layers`` stack ending in ``num_classes``."""
    if num_layers < 1:
        raise ValueError("architectures need at least one layer")
    if num_layers == 1:
        return [(in_features, num_classes)]
    dims = [(in_features, hidden_features)]
    dims.extend((hidden_features, hidden_features) for _ in range(num_layers - 2))
    dims.append((hidden_features, num_classes))
    return dims


def build_relaxed_node_classifier(conv_type: str, layer_dims: Sequence[Tuple[int, int]],
                                  bit_choices: Sequence[int], dropout: float = 0.5,
                                  quantizer_factory: QuantizerFactory = default_quantizer_factory,
                                  hops: int = 3, heads: int = 1,
                                  head_merge: str = "concat",
                                  rng: Optional[np.random.Generator] = None
                                  ) -> RelaxedNodeClassifier:
    """Build the relaxed (searchable) node classifier for a layer family.

    ``conv_type`` is one of ``"gcn"`` / ``"gin"`` / ``"sage"`` / ``"gat"`` /
    ``"tag"`` / ``"transformer"``; ``layer_dims`` is a list of
    ``(in_features, out_features)`` pairs, ``hops`` only applies to
    ``"tag"`` and ``heads`` / ``head_merge`` only to the attention families
    (hidden layers merge by ``head_merge``, the output layer by ``mean``).
    The first layer receives an input quantizer; intermediate aggregation
    outputs keep their quantizers so the component count matches the
    paper's example (nine components for a two-layer GCN).
    """
    key = conv_type.lower()
    if key not in _RELAXED_CONVS:
        raise KeyError(f"unknown conv type {conv_type!r}; options: {sorted(_RELAXED_CONVS)}")
    conv_class = _RELAXED_CONVS[key]
    convs: List[MessagePassing] = []
    for index, (fan_in, fan_out) in enumerate(layer_dims):
        if key == "tag":
            extra = {"hops": hops}
        elif key in ("gat", "transformer"):
            extra = {"heads": heads,
                     "head_merge": head_merge_for_layer(index, len(layer_dims),
                                                        heads, head_merge)}
        else:
            extra = {}
        convs.append(conv_class(fan_in, fan_out, bit_choices,
                                quantize_input=(index == 0),
                                quantizer_factory=quantizer_factory, rng=rng,
                                **extra))
    return RelaxedNodeClassifier(convs, dropout=dropout, rng=rng)


def build_relaxed_graph_classifier(in_features: int, hidden_features: int,
                                   num_classes: int, bit_choices: Sequence[int],
                                   num_layers: int = 5, pooling: str = "max",
                                   dropout: float = 0.5,
                                   quantizer_factory: QuantizerFactory = default_quantizer_factory,
                                   rng: Optional[np.random.Generator] = None
                                   ) -> RelaxedGraphClassifier:
    """Build the relaxed GIN graph classifier used by the graph-level tasks."""
    return RelaxedGraphClassifier(in_features, hidden_features, num_classes, bit_choices,
                                  num_layers=num_layers, pooling=pooling, dropout=dropout,
                                  quantizer_factory=quantizer_factory, rng=rng)
