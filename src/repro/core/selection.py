"""Bit-width selection — the "Find Bit-widths" loop of Algorithm 1.

The relaxed architecture is trained with the Lagrangian objective
``L(A'(G), y) + lambda * sum_i C(T_i)``; both the network weights and the
relaxation parameters ``alpha`` receive gradients.  After ``epochs``
iterations the arg-max bit-width of every relaxed quantizer forms the final
assignment sequence ``S``.

Two entry points are provided: :func:`search_node_bitwidths` for
transductive node classification and :func:`search_graph_bitwidths` for
mini-batched graph classification.  Both return a
:class:`BitWidthSearchResult` with the assignment, per-epoch history and the
expected average bit-width trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.penalty import expected_average_bits, total_penalty
from repro.core.relaxed_modules import RelaxedGraphClassifier, RelaxedNodeClassifier
from repro.graphs.batch import iterate_minibatches
from repro.graphs.graph import Graph
from repro.optim import Adam
from repro.quant.bitops import average_bits
from repro.quant.qmodules import BitWidthAssignment
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


@dataclass
class BitWidthSearchResult:
    """Outcome of the differentiable bit-width search."""

    assignment: BitWidthAssignment
    average_bits: float
    lambda_value: float
    loss_history: List[float] = field(default_factory=list)
    penalty_history: List[float] = field(default_factory=list)
    expected_bits_history: List[float] = field(default_factory=list)

    def __repr__(self) -> str:
        return (f"BitWidthSearchResult(components={len(self.assignment)}, "
                f"average_bits={self.average_bits:.2f}, lambda={self.lambda_value})")


def _backward_objective(model, task_loss: Tensor, lambda_value: float,
                        penalty_only_alphas: bool) -> Tensor:
    """Backpropagate the search objective and return the penalty value.

    The default (joint) mode backpropagates ``L + lambda * C`` through all
    parameters.  ``penalty_only_alphas`` reproduces the decoupled routing
    written out in Algorithm 1 lines 19/22: the network weights receive only
    the task gradient while the relaxation parameters ``alpha`` receive only
    the penalty gradient.
    """
    from repro.core.penalty import alpha_parameters

    penalty = total_penalty(model)
    if not penalty_only_alphas:
        objective = task_loss + penalty * float(lambda_value) if lambda_value != 0.0 \
            else task_loss
        objective.backward()
        return penalty
    # Decoupled routing: task gradient for the weights only, penalty gradient
    # for the alphas only.  The penalty depends solely on the alphas, so a
    # second backward pass touches nothing else.
    task_loss.backward()
    for alpha in alpha_parameters(model):
        alpha.grad = None
    (penalty * float(lambda_value)).backward()
    return penalty


def search_node_bitwidths(model: RelaxedNodeClassifier, graph: Graph,
                          lambda_value: float, epochs: int = 60, lr: float = 0.01,
                          weight_decay: float = 5e-4,
                          mask: Optional[np.ndarray] = None,
                          multilabel: bool = False,
                          penalty_only_alphas: bool = False,
                          sampler=None) -> BitWidthSearchResult:
    """Run the relaxed search on a transductive node-classification graph.

    With a :class:`~repro.graphs.sampling.NeighborSampler` the search epoch
    iterates neighbor-sampled minibatches instead of the full graph — the
    relaxed quantizers and the penalty are identical, only the task-loss
    estimator changes.
    """
    if mask is None:
        mask = graph.train_mask

    def epoch_steps():
        if sampler is None:
            yield graph, mask
        else:
            for batch in sampler:
                yield batch, None

    optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    loss_history: List[float] = []
    penalty_history: List[float] = []
    bits_history: List[float] = []
    model.train()
    for _ in range(epochs):
        step_losses: List[float] = []
        step_penalties: List[float] = []
        for data, step_mask in epoch_steps():
            model.zero_grad()
            logits = model(data)
            targets = data.y if step_mask is None else graph.y
            if multilabel:
                task_loss = F.binary_cross_entropy_with_logits(logits, targets,
                                                               mask=step_mask)
            else:
                task_loss = F.cross_entropy(logits, targets, mask=step_mask)
            penalty = _backward_objective(model, task_loss, lambda_value,
                                          penalty_only_alphas)
            optimizer.step()
            step_losses.append(float(task_loss.data))
            step_penalties.append(float(penalty.data))
        loss_history.append(float(np.mean(step_losses)))
        penalty_history.append(float(np.mean(step_penalties)))
        bits_history.append(expected_average_bits(model))

    assignment = model.export_assignment()
    return BitWidthSearchResult(
        assignment=assignment,
        average_bits=average_bits(assignment.values()),
        lambda_value=lambda_value,
        loss_history=loss_history,
        penalty_history=penalty_history,
        expected_bits_history=bits_history,
    )


def search_graph_bitwidths(model: RelaxedGraphClassifier, graphs: Sequence[Graph],
                           lambda_value: float, epochs: int = 20, lr: float = 0.01,
                           batch_size: int = 32,
                           rng: Optional[np.random.Generator] = None,
                           penalty_only_alphas: bool = False) -> BitWidthSearchResult:
    """Run the relaxed search on a graph-classification dataset."""
    if rng is None:
        rng = np.random.default_rng(0)
    optimizer = Adam(model.parameters(), lr=lr)
    loss_history: List[float] = []
    penalty_history: List[float] = []
    bits_history: List[float] = []
    model.train()
    for _ in range(epochs):
        epoch_losses: List[float] = []
        epoch_penalties: List[float] = []
        for batch in iterate_minibatches(list(graphs), batch_size, rng=rng):
            model.zero_grad()
            logits = model(batch)
            task_loss = F.cross_entropy(logits, batch.y)
            penalty = _backward_objective(model, task_loss, lambda_value,
                                          penalty_only_alphas)
            optimizer.step()
            epoch_losses.append(float(task_loss.data))
            epoch_penalties.append(float(penalty.data))
        loss_history.append(float(np.mean(epoch_losses)))
        penalty_history.append(float(np.mean(epoch_penalties)))
        bits_history.append(expected_average_bits(model))

    assignment = model.export_assignment()
    return BitWidthSearchResult(
        assignment=assignment,
        average_bits=average_bits(assignment.values()),
        lambda_value=lambda_value,
        loss_history=loss_history,
        penalty_history=penalty_history,
        expected_bits_history=bits_history,
    )
