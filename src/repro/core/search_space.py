"""Bit-width search-space utilities: enumeration, random baselines, Pareto fronts.

These back the ablations of the paper:

* Figure 2 enumerates (a sample of) the ``|B|^9`` assignments of a two-layer
  GCN and plots accuracy against average bit-width;
* Figure 3 histograms the per-component bit-widths of the Pareto front;
* Table 10 compares MixQ-GNN against *random* assignments, with and without
  an INT8 constraint on the prediction output.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.quant.bitops import average_bits
from repro.quant.qmodules import (
    BitWidthAssignment,
    gat_component_names,
    gcn_component_names,
    gin_component_names,
    sage_component_names,
    tag_component_names,
    transformer_component_names,
)


def conv_component_names(conv_type: str, num_layers: int, hops: int = 3,
                         heads: int = 1) -> List[str]:
    """The search-space components of a node-classifier conv family.

    One dispatch point shared by the CLI, the experiment runners and the
    test fixtures.  ``hops`` only affects ``"tag"`` (one weight component
    per adjacency power).  ``heads`` is accepted for interface symmetry but
    never changes the component set: attention heads add score *columns*
    behind one shared per-layer ``attention`` quantizer, so a multi-head
    search runs over exactly the single-head assignment format.
    """
    del heads  # heads never change the component set (documented above)
    builders = {
        "gcn": lambda: gcn_component_names(num_layers),
        "sage": lambda: sage_component_names(num_layers),
        "gin": lambda: gin_component_names(num_layers, with_head=False),
        "gat": lambda: gat_component_names(num_layers),
        "tag": lambda: tag_component_names(num_layers, hops=hops),
        "transformer": lambda: transformer_component_names(num_layers),
    }
    if conv_type not in builders:
        raise KeyError(f"unknown conv type {conv_type!r}; "
                       f"options: {sorted(builders)}")
    return builders[conv_type]()


def enumerate_assignments(component_names: Sequence[str],
                          bit_choices: Sequence[int],
                          limit: Optional[int] = None) -> Iterator[BitWidthAssignment]:
    """Yield assignments from the full cartesian product ``B^{components}``.

    ``limit`` caps the number of yielded assignments (the full grid for a
    two-layer GCN with three choices has 3^9 = 19,683 entries).
    """
    count = 0
    for combination in itertools.product(bit_choices, repeat=len(component_names)):
        yield dict(zip(component_names, (int(b) for b in combination)))
        count += 1
        if limit is not None and count >= limit:
            return


def random_assignment(component_names: Sequence[str], bit_choices: Sequence[int],
                      rng: np.random.Generator,
                      output_component: Optional[str] = None,
                      output_bits: Optional[int] = None) -> BitWidthAssignment:
    """A uniformly random assignment; optionally pin the prediction output.

    ``output_component`` / ``output_bits`` implement the "Random + INT8"
    baseline of Table 10, which fixes the last function's output to 8 bits.
    """
    assignment = {name: int(rng.choice(bit_choices)) for name in component_names}
    if output_component is not None and output_bits is not None:
        if output_component not in assignment:
            raise KeyError(f"{output_component!r} is not a component of this architecture")
        assignment[output_component] = int(output_bits)
    return assignment


def sample_assignments(component_names: Sequence[str], bit_choices: Sequence[int],
                       num_samples: int, rng: np.random.Generator,
                       unique: bool = True) -> List[BitWidthAssignment]:
    """Sample ``num_samples`` random assignments (optionally without repeats)."""
    seen: set = set()
    assignments: List[BitWidthAssignment] = []
    attempts = 0
    while len(assignments) < num_samples and attempts < 50 * num_samples:
        attempts += 1
        assignment = random_assignment(component_names, bit_choices, rng)
        key = tuple(assignment[name] for name in component_names)
        if unique and key in seen:
            continue
        seen.add(key)
        assignments.append(assignment)
    return assignments


def assignment_average_bits(assignment: BitWidthAssignment) -> float:
    """Average bit-width of one assignment (the x-axis of Figure 2)."""
    return average_bits(assignment.values())


def pareto_front(points: Sequence[Tuple[float, float]]) -> List[int]:
    """Indices of the Pareto-optimal points for (cost, quality) pairs.

    A point is on the front when no other point has both lower cost (average
    bit-width) and higher quality (accuracy).  Ties on both axes keep the
    first occurrence.
    """
    indices = sorted(range(len(points)), key=lambda i: (points[i][0], -points[i][1]))
    front: List[int] = []
    best_quality = -np.inf
    for index in indices:
        cost, quality = points[index]
        if quality > best_quality:
            front.append(index)
            best_quality = quality
    return front


def bit_width_histogram(assignments: Iterable[BitWidthAssignment],
                        component_names: Sequence[str],
                        bit_choices: Sequence[int]) -> Dict[str, Dict[int, int]]:
    """Per-component histogram of chosen bit-widths (Figure 3)."""
    histogram: Dict[str, Dict[int, int]] = {
        name: {int(bits): 0 for bits in bit_choices} for name in component_names}
    for assignment in assignments:
        for name in component_names:
            bits = int(assignment[name])
            if bits not in histogram[name]:
                histogram[name][bits] = 0
            histogram[name][bits] += 1
    return histogram
