"""MixQ-GNN: differentiable mixed-precision bit-width search for GNNs.

This package is the paper's primary contribution:

* :class:`RelaxedQuantizer` — a softmax mixture over per-bit-width quantizers
  (the continuous relaxation of Equation 6).
* :mod:`repro.core.penalty` — the memory-proportional penalty ``C(T)``
  (Equation 8) and its aggregation over an architecture.
* :mod:`repro.core.relaxed_modules` — relaxed message-passing and linear
  layers mirroring the quantized modules in :mod:`repro.quant.qmodules`.
* :mod:`repro.core.build` — "Build Relaxed Architecture" from Algorithm 1.
* :mod:`repro.core.selection` — the bit-width search loop ("Find Bit-widths").
* :mod:`repro.core.mixq` — the high-level :class:`MixQNodeClassifier` /
  :class:`MixQGraphClassifier` APIs (search, finalize, train, evaluate).
* :mod:`repro.core.search_space` — exhaustive/random assignment enumeration
  and Pareto-front extraction (Figures 2, 3 and Table 10).
"""

from repro.core.relaxed_quantizer import RelaxedQuantizer
from repro.core.penalty import memory_penalty_mb, total_penalty
from repro.core.relaxed_modules import (
    RelaxedGCNConv,
    RelaxedGINConv,
    RelaxedSAGEConv,
    RelaxedLinear,
    RelaxedNodeClassifier,
    RelaxedGraphClassifier,
)
from repro.core.build import build_relaxed_node_classifier, build_relaxed_graph_classifier
from repro.core.selection import BitWidthSearchResult, search_node_bitwidths, search_graph_bitwidths
from repro.core.mixq import MixQNodeClassifier, MixQGraphClassifier, MixQResult
from repro.core.search_space import (
    enumerate_assignments,
    random_assignment,
    pareto_front,
)

__all__ = [
    "RelaxedQuantizer",
    "memory_penalty_mb",
    "total_penalty",
    "RelaxedGCNConv",
    "RelaxedGINConv",
    "RelaxedSAGEConv",
    "RelaxedLinear",
    "RelaxedNodeClassifier",
    "RelaxedGraphClassifier",
    "build_relaxed_node_classifier",
    "build_relaxed_graph_classifier",
    "BitWidthSearchResult",
    "search_node_bitwidths",
    "search_graph_bitwidths",
    "MixQNodeClassifier",
    "MixQGraphClassifier",
    "MixQResult",
    "enumerate_assignments",
    "random_assignment",
    "pareto_front",
]
