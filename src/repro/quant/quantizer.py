"""Quantization-aware-training affine quantizer (paper Equations 3 and 4).

``Q(X) = clip(round(X / S) + Z, a, b)`` and ``Q^{-1}(X) = (X - Z) * S``.

The quantizer supports:

* signed (symmetric-range) and unsigned integer grids for any bit-width;
* observer-based range tracking with either exponential-moving-average
  min/max or percentile statistics (the latter is what Degree-Quant uses);
* symmetric mode (zero-point forced to 0) — required when quantizing sparse
  adjacency values so that structural zeros stay exactly zero;
* a straight-through estimator for the rounding function, so fake
  quantization is differentiable for QAT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.tensor.tensor import Tensor


@dataclass
class QuantizationParameters:
    """Scale / zero-point pair together with the integer grid bounds."""

    scale: np.ndarray
    zero_point: np.ndarray
    qmin: int
    qmax: int
    bits: int

    def as_scalars(self) -> tuple[float, float]:
        return float(np.asarray(self.scale).reshape(-1)[0]), \
            float(np.asarray(self.zero_point).reshape(-1)[0])


def integer_range(bits: int, signed: bool) -> tuple[int, int]:
    """Integer grid bounds for a given bit-width."""
    if bits < 1:
        raise ValueError("bit-width must be at least 1")
    if signed:
        return -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    return 0, 2 ** bits - 1


class AffineQuantizer(Module):
    """A per-tensor affine quantizer with STE gradients.

    Parameters
    ----------
    bits:
        Integer bit-width of the quantization grid.
    signed:
        Use a signed grid (symmetric around zero) instead of ``[0, 2^b - 1]``.
    symmetric:
        Force the zero-point to zero.  Mandatory for sparse adjacency values.
    observer:
        ``"ema"`` (exponential moving average of min/max), ``"minmax"``
        (running min/max) or ``"percentile"`` (clipped percentile range, the
        variant Degree-Quant advocates).
    momentum:
        EMA momentum for the ``"ema"`` observer.
    percentile:
        Tail fraction clipped on each side by the ``"percentile"`` observer.
    """

    def __init__(self, bits: int = 8, signed: bool = True, symmetric: bool = False,
                 observer: str = "ema", momentum: float = 0.1,
                 percentile: float = 0.001):
        super().__init__()
        if observer not in {"ema", "minmax", "percentile"}:
            raise ValueError(f"unknown observer {observer!r}")
        self.bits = int(bits)
        self.signed = signed
        self.symmetric = symmetric
        self.observer = observer
        self.momentum = momentum
        self.percentile = percentile
        self.qmin, self.qmax = integer_range(self.bits, signed)
        self.register_buffer("running_min", np.asarray(0.0, dtype=np.float64))
        self.register_buffer("running_max", np.asarray(0.0, dtype=np.float64))
        self.register_buffer("initialized", np.asarray(False))

    # ------------------------------------------------------------------ #
    # range tracking
    # ------------------------------------------------------------------ #
    def observe(self, values: np.ndarray) -> None:
        """Update the tracked range from a batch of float values."""
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.size == 0:
            return
        if self.observer == "percentile":
            low = np.quantile(values, self.percentile)
            high = np.quantile(values, 1.0 - self.percentile)
        else:
            low = values.min()
            high = values.max()
        if not bool(self.initialized):
            new_min, new_max = low, high
            self.update_buffer("initialized", np.asarray(True))
        elif self.observer == "minmax":
            new_min = min(float(self.running_min), low)
            new_max = max(float(self.running_max), high)
        else:  # ema and percentile both smooth with EMA after initialisation
            new_min = (1 - self.momentum) * float(self.running_min) + self.momentum * low
            new_max = (1 - self.momentum) * float(self.running_max) + self.momentum * high
        self.update_buffer("running_min", np.asarray(new_min, dtype=np.float64))
        self.update_buffer("running_max", np.asarray(new_max, dtype=np.float64))

    def quantization_parameters(self) -> QuantizationParameters:
        """Current scale / zero-point derived from the tracked range."""
        low = float(self.running_min)
        high = float(self.running_max)
        if not bool(self.initialized):
            low, high = -1.0, 1.0
        if self.symmetric:
            bound = max(abs(low), abs(high), 1e-8)
            if self.signed:
                scale = bound / max(self.qmax, 1)
            else:
                scale = bound / max(self.qmax, 1)
            zero_point = 0.0
        else:
            low = min(low, 0.0)
            high = max(high, 0.0)
            span = max(high - low, 1e-8)
            scale = span / (self.qmax - self.qmin)
            zero_point = float(np.clip(np.rint(self.qmin - low / scale),
                                       self.qmin, self.qmax))
        return QuantizationParameters(
            scale=np.asarray(scale, dtype=np.float64),
            zero_point=np.asarray(zero_point, dtype=np.float64),
            qmin=self.qmin, qmax=self.qmax, bits=self.bits)

    # ------------------------------------------------------------------ #
    # quantization
    # ------------------------------------------------------------------ #
    def fake_quantize(self, x: Tensor) -> Tensor:
        """Simulated quantization ``Q^{-1}(Q(x))`` with STE gradients."""
        if self.training:
            self.observe(x.data)
        elif not bool(self.initialized):
            self.observe(x.data)
        params = self.quantization_parameters()
        scale = float(params.scale)
        zero_point = float(params.zero_point)
        quantized = (x * (1.0 / scale)).round_ste() + zero_point
        quantized = quantized.clamp(self.qmin, self.qmax)
        return (quantized - zero_point) * scale

    def forward(self, x: Tensor) -> Tensor:
        return self.fake_quantize(x)

    def quantize_array(self, values: np.ndarray,
                       update_range: bool = True) -> tuple[np.ndarray, QuantizationParameters]:
        """Quantize a raw numpy array to integers (no gradient tracking)."""
        values = np.asarray(values, dtype=np.float64)
        if update_range or not bool(self.initialized):
            self.observe(values)
        params = self.quantization_parameters()
        scale, zero_point = params.as_scalars()
        integers = np.clip(np.rint(values / scale) + zero_point, self.qmin, self.qmax)
        return integers.astype(np.int64), params

    def dequantize_array(self, integers: np.ndarray,
                         params: Optional[QuantizationParameters] = None) -> np.ndarray:
        """Map integer values back to floats with the current parameters."""
        if params is None:
            params = self.quantization_parameters()
        scale, zero_point = params.as_scalars()
        return (np.asarray(integers, dtype=np.float64) - zero_point) * scale

    def __repr__(self) -> str:
        kind = "symmetric" if self.symmetric else "affine"
        return (f"AffineQuantizer(bits={self.bits}, {kind}, signed={self.signed}, "
                f"observer={self.observer!r})")


class IdentityQuantizer(Module):
    """A no-op quantizer used for components kept in full precision (FP32)."""

    bits = 32

    def fake_quantize(self, x: Tensor) -> Tensor:
        return x

    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "IdentityQuantizer()"
