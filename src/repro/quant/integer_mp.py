"""Theorem 1: exact quantized message passing.

For adjacency ``A`` with per-row quantization parameters ``(S_a, Z_a)``,
features ``X`` with per-column parameters ``(S_x, Z_x)`` and output
parameters ``(S_y, Z_y)``, the quantized aggregation output is

``Q_y(AX) = C1 ⊙ Q_a(A) Q_x(X) ⊙ C2 + C3``

where ``C1 = S_a`` (row scaling), ``C2 = S_x ⊘ S_y`` (column scaling) and
``C3`` collects the zero-point correction terms.  The heavy term
``Q_a(A) Q_x(X)`` is a pure sparse-dense *integer* matrix multiplication;
``C1``/``C2``/``C3`` are rank-one vector corrections.

The functions below implement both the general dense form (used to verify
the theorem numerically — the analogue of the paper's
``test_graph_conv_module.py`` / ``test_graph_iso_module.py`` checks) and the
sparse fast path used by the quantized inference modules, which requires a
symmetric adjacency quantizer (``Z_a = 0``) so that structural zeros remain
exactly zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.kernels import BackendLike, resolve_backend
from repro.quant.quantizer import AffineQuantizer
from repro.tensor.sparse import SparseTensor

VectorOrScalar = Union[float, np.ndarray]


@dataclass
class QuantizedMessagePassingResult:
    """Output of the integer message-passing kernel."""

    quantized_output: np.ndarray
    dequantized_output: np.ndarray
    integer_product: np.ndarray
    scale_a: np.ndarray
    scale_x: np.ndarray
    scale_y: np.ndarray


def _as_column(vector: VectorOrScalar, length: int) -> np.ndarray:
    array = np.asarray(vector, dtype=np.float64).reshape(-1)
    if array.size == 1:
        array = np.full(length, float(array[0]))
    if array.size != length:
        raise ValueError(f"expected scalar or length-{length} vector, got {array.size}")
    return array.reshape(length, 1)


def _as_row(vector: VectorOrScalar, length: int) -> np.ndarray:
    return _as_column(vector, length).reshape(1, length)


def quantized_matmul_dense(qa: np.ndarray, sa: VectorOrScalar, za: VectorOrScalar,
                           qx: np.ndarray, sx: VectorOrScalar, zx: VectorOrScalar,
                           sy: VectorOrScalar = 1.0, zy: VectorOrScalar = 0.0
                           ) -> np.ndarray:
    """General (dense) form of Theorem 1: returns ``Q_y(AX)``.

    ``sa``/``za`` may be scalars or per-row vectors of ``A``; ``sx``/``zx``
    scalars or per-column vectors of ``X``; ``sy``/``zy`` scalars or
    per-column vectors of the output.
    """
    qa = np.asarray(qa, dtype=np.float64)
    qx = np.asarray(qx, dtype=np.float64)
    n_rows, n_inner = qa.shape
    n_cols = qx.shape[1]

    sa_col = _as_column(sa, n_rows)
    za_col = _as_column(za, n_rows)
    sx_row = _as_row(sx, n_cols)
    zx_row = _as_row(zx, n_cols)
    sy_row = _as_row(sy, n_cols)
    zy_row = _as_row(zy, n_cols)

    integer_product = qa @ qx                              # (n_rows, n_cols)
    row_sum_qa = qa.sum(axis=1, keepdims=True)             # (n_rows, 1)
    col_sum_qx = qx.sum(axis=0, keepdims=True)             # (1, n_cols)

    main = sa_col * integer_product * sx_row
    correction_x = sa_col * row_sum_qa * (zx_row * sx_row)
    correction_a = (za_col * sa_col) * (col_sum_qx * sx_row)
    correction_joint = n_inner * (za_col * sa_col) * (zx_row * sx_row)

    output = (main - correction_x - correction_a + correction_joint) / sy_row + zy_row
    return output


def quantized_spmm(qa: SparseTensor, sa: VectorOrScalar,
                   qx: np.ndarray, sx: VectorOrScalar, zx: VectorOrScalar,
                   sy: VectorOrScalar = 1.0, zy: VectorOrScalar = 0.0,
                   backend: "BackendLike" = None) -> np.ndarray:
    """Sparse fast path of Theorem 1 (requires a symmetric adjacency, Z_a = 0).

    The integer sparse-dense product runs on int64 arrays; only the rank-one
    corrections touch floating point, exactly as the theorem prescribes.

    Dispatches to a kernel backend (:mod:`repro.kernels`): ``backend`` may
    be a registry name or instance; ``None`` resolves the process default
    (``REPRO_KERNEL_BACKEND`` env var, else the ``numpy`` reference).  All
    registered backends are certified bit-identical on this path.
    """
    if not isinstance(qa, SparseTensor):
        raise TypeError("quantized_spmm expects the quantized adjacency as SparseTensor")
    return resolve_backend(backend).spmm(qa, sa, qx, sx, zx, sy=sy, zy=zy)


def quantized_edge_spmm(q_edge: np.ndarray, s_edge: float,
                        qx: np.ndarray, sx: VectorOrScalar, zx: VectorOrScalar,
                        src: np.ndarray, dst: np.ndarray, num_dst: int,
                        backend: "BackendLike" = None) -> np.ndarray:
    """Theorem 1 over an explicit edge list — the per-edge *score plan* path.

    The attention executor cannot pre-materialise its operator (coefficients
    depend on the activations), so instead of a sparse matrix it carries the
    integer per-edge coefficients ``q_edge`` on a symmetric grid
    (``Z_e = 0``, the same requirement as :func:`quantized_spmm`) plus the
    edge endpoints: ``src`` indexes the rows of ``qx``, ``dst`` the output
    rows.  Computes ``sum_{e: dst(e)=t} s_e q_e · s_x (qx[src(e)] - z_x)``
    with the heavy accumulation in int64 and only the rank-one zero-point
    correction in floating point:

    ``Y[t] = s_e s_x (Σ q_e qx[src(e)] - z_x Σ q_e)``.

    Multi-head form: ``q_edge`` with shape ``(E, H)`` and ``qx`` with shape
    ``(N, H, D)`` run all heads in one pass and return ``(num_dst, H, D)``
    — the single-head ``(E,)`` / ``(N, D)`` form is the ``H = 1`` special
    case with the head axis squeezed.  Integer accumulation is exact, so
    the head axis changes shapes only, never values.

    Dispatches to a kernel backend exactly like :func:`quantized_spmm`.
    """
    return resolve_backend(backend).edge_spmm(q_edge, s_edge, qx, sx, zx,
                                              src, dst, num_dst)


def integer_message_passing(adjacency: SparseTensor, features: np.ndarray,
                            quantizer_a: AffineQuantizer,
                            quantizer_x: AffineQuantizer,
                            quantizer_y: Optional[AffineQuantizer] = None
                            ) -> QuantizedMessagePassingResult:
    """End-to-end quantized aggregation ``Y = A X`` using integer arithmetic.

    The adjacency quantizer must be symmetric (``Z_a = 0``); the feature
    quantizer may be a general affine quantizer.  When ``quantizer_y`` is
    omitted the output parameters are ``S_y = 1, Z_y = 0`` (the multi-layer
    stacking case discussed after Theorem 1), so the quantized output *is*
    the float aggregation result.
    """
    if not quantizer_a.symmetric:
        raise ValueError("the adjacency quantizer must be symmetric (zero-point 0) "
                         "to preserve sparsity")
    qa_values, params_a = quantizer_a.quantize_array(adjacency.values, update_range=True)
    qa = adjacency.with_values(qa_values.astype(np.float32))
    qx, params_x = quantizer_x.quantize_array(features, update_range=True)

    if quantizer_y is None:
        scale_y = np.asarray(1.0)
        zero_y = np.asarray(0.0)
    else:
        # The output range is observed from the fake-quantized float product so
        # the scale matches what QAT saw during training.
        float_product = np.asarray(
            adjacency.with_values(
                quantizer_a.dequantize_array(qa_values, params_a).astype(np.float32)
            ).csr @ quantizer_x.dequantize_array(qx, params_x), dtype=np.float64)
        quantizer_y.observe(float_product)
        params_y = quantizer_y.quantization_parameters()
        scale_y = params_y.scale
        zero_y = params_y.zero_point

    scale_a, _ = params_a.as_scalars()
    scale_x, zero_x = params_x.as_scalars()
    quantized_output = quantized_spmm(
        qa, scale_a, qx, scale_x, zero_x, sy=float(scale_y), zy=float(zero_y))
    dequantized = (quantized_output - float(zero_y)) * float(scale_y)
    integer_product = np.asarray(qa.csr.astype(np.int64) @ qx.astype(np.int64))
    return QuantizedMessagePassingResult(
        quantized_output=quantized_output,
        dequantized_output=dequantized,
        integer_product=integer_product,
        scale_a=np.asarray(scale_a),
        scale_x=np.asarray(scale_x),
        scale_y=np.asarray(scale_y),
    )


def fake_quantized_reference(adjacency: SparseTensor, features: np.ndarray,
                             quantizer_a: AffineQuantizer,
                             quantizer_x: AffineQuantizer) -> np.ndarray:
    """The reference value Theorem 1 must match: ``Q_f(A) @ Q_f(X)`` in floats."""
    qa_values, params_a = quantizer_a.quantize_array(adjacency.values, update_range=False)
    fake_a = adjacency.with_values(
        quantizer_a.dequantize_array(qa_values, params_a).astype(np.float32))
    qx, params_x = quantizer_x.quantize_array(features, update_range=False)
    fake_x = quantizer_x.dequantize_array(qx, params_x)
    return np.asarray(fake_a.csr @ fake_x, dtype=np.float64)
