"""Analytic space/time complexity comparison (paper Table 1).

The table compares Degree-Quant, A²Q and MixQ-GNN.  Space complexity counts
quantization parameters / stored statistics; time complexity separates FP32
work (quantizer bookkeeping) from integer work (the actual propagation).
The formulas are evaluated symbolically-by-substitution so the benchmark can
print concrete parameter counts for a given graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class ComplexityRow:
    """One method's complexity entry."""

    method: str
    space: str
    time_fp32: str
    time_int: str

    def space_count(self, num_nodes: int, num_features: int, num_layers: int,
                    bits: float) -> float:
        """Evaluate the space formula for concrete sizes (number of stored values)."""
        n, f, depth, b = num_nodes, num_features, num_layers, bits
        if self.method == "DQ":
            return depth + b * n * f * depth / 32.0
        if self.method == "A2Q":
            return n * depth + b * n * f * depth / 32.0
        return depth + b * n * f * depth / 32.0  # MixQ-GNN

    def time_fp32_count(self, num_nodes: int, num_features: int, num_layers: int) -> float:
        n, f, depth = num_nodes, num_features, num_layers
        if self.method == "A2Q":
            return n * f * depth
        return f * depth  # DQ and MixQ-GNN

    def time_int_count(self, num_nodes: int, num_features: int, num_layers: int) -> float:
        n, f, depth = num_nodes, num_features, num_layers
        return (n * n * f + n * f * f) * depth


def complexity_table() -> Dict[str, ComplexityRow]:
    """The three rows of Table 1."""
    return {
        "DQ": ComplexityRow(
            method="DQ",
            space="O(l + b·n·f·l)",
            time_fp32="O_FP32(f·l)",
            time_int="O_INT((n²f + n·f²)·l)",
        ),
        "A2Q": ComplexityRow(
            method="A2Q",
            space="O(n·l + b̄·n·f·l)",
            time_fp32="O_FP32(n·f·l)",
            time_int="O_INT((n²f + n·f²)·l)",
        ),
        "MixQ-GNN": ComplexityRow(
            method="MixQ-GNN",
            space="O(l + b̄·n·f·l)",
            time_fp32="O_FP32(f·l)",
            time_int="O_INT((n²f + n·f²)·l)",
        ),
    }
