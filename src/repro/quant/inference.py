"""Deprecated: integer GCN inference, superseded by :mod:`repro.serving`.

The end-to-end integer inference engine (Figure 7, stage 5) now lives in
the serving subsystem — :class:`repro.serving.QuantizedArtifact` for the
export step and :class:`repro.serving.FullGraphSession` /
:class:`repro.serving.BlockSession` for execution, generalized beyond GCN
to GraphSAGE and GIN and wired into the ``repro export`` / ``repro
predict`` CLI.

:class:`IntegerGCNInference` is kept as a thin alias over the GCN
full-graph path so existing imports and call sites keep working; new code
should export an artifact and open a session instead::

    artifact = QuantizedArtifact.from_model(model)
    logits = FullGraphSession(artifact, graph).predict()

See ``docs/serving.md`` ("Migrating from repro.quant.inference") for the
full export→predict guide.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.quant.bitops import BitOpsCounter
from repro.quant.qmodules import QuantGCNConv, QuantNodeClassifier
from repro.serving.artifact import LayerPlan, QuantizedArtifact
from repro.serving.session import FullGraphSession

__all__ = ["IntegerGCNInference"]

_DEPRECATION_MESSAGE = (
    "IntegerGCNInference is deprecated; export a repro.serving.QuantizedArtifact "
    "and open a FullGraphSession (or BlockSession) instead")


class IntegerGCNInference:
    """Deprecated alias over the serving subsystem's GCN full-graph path.

    Build it from a trained model with :meth:`from_quantized_model`, then
    call :meth:`predict` (float logits) or :meth:`predict_classes` — the
    original engine's API, now delegating to
    :class:`~repro.serving.FullGraphSession`.
    """

    def __init__(self, layer_plans: Sequence[LayerPlan],
                 _warn: bool = True):
        if _warn:
            warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)
        if not layer_plans:
            raise ValueError("the inference engine needs at least one layer")
        self.layer_plans: List[LayerPlan] = list(layer_plans)
        self._artifact = QuantizedArtifact(conv_type="gcn", layers=self.layer_plans)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_quantized_model(cls, model: QuantNodeClassifier) -> "IntegerGCNInference":
        """Extract integer weights and fused quantization parameters from a model.

        Only GCN layers are accepted, matching the original engine; use
        :meth:`repro.serving.QuantizedArtifact.from_model` for GraphSAGE and
        GIN support.
        """
        warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)
        for conv in model.convs:
            if not isinstance(conv, QuantGCNConv):
                raise TypeError("IntegerGCNInference supports QuantGCNConv layers only")
        artifact = QuantizedArtifact.from_model(model)
        return cls(artifact.layers, _warn=False)

    # ------------------------------------------------------------------ #
    def _session(self, graph: Graph) -> FullGraphSession:
        return FullGraphSession(self._artifact, graph)

    def predict(self, graph: Graph) -> np.ndarray:
        """Float logits computed through integer matrix arithmetic."""
        return self._session(graph).predict()

    def predict_classes(self, graph: Graph) -> np.ndarray:
        """Arg-max class predictions."""
        return self._session(graph).predict_classes()

    def bit_operations(self, graph: Graph,
                       nodes: Optional[Sequence[int]] = None) -> BitOpsCounter:
        """BitOPs of one integer inference pass (mirrors the QAT model's count)."""
        return self._session(graph).bit_operations(nodes)
