"""End-to-end integer inference for quantized GCN architectures (Figure 7, stage 5).

Quantization-aware training in :mod:`repro.quant.qmodules` simulates
quantization with float "fake-quantized" values.  At deployment the paper
removes the simulation and executes the message passing with integer
arithmetic, using Theorem 1 to fuse the quantization parameters of the
adjacency, the features and the output into per-layer constants.

:class:`IntegerGCNInference` performs that conversion for a trained
:class:`~repro.quant.qmodules.QuantNodeClassifier` built from GCN layers:

* weights are stored as INT matrices with their (symmetric) scales;
* node features / activations are quantized to INT at every layer boundary
  using the ranges observed during QAT;
* the sparse aggregation runs as an integer sparse-dense product followed by
  the rank-one corrections of Theorem 1;
* only the final logits are returned in floating point.

The engine exists to demonstrate and test numerical parity: its outputs match
the fake-quantized QAT model to float32 round-off (see
``tests/quant/test_integer_inference.py``), which is exactly the guarantee
Theorem 1 provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.quant.bitops import BitOpsCounter
from repro.quant.integer_mp import quantized_spmm
from repro.quant.qmodules import QuantGCNConv, QuantNodeClassifier
from repro.quant.quantizer import AffineQuantizer, IdentityQuantizer, QuantizationParameters


@dataclass
class _LayerPlan:
    """Pre-extracted integer execution plan for one GCN layer."""

    weight_int: np.ndarray
    weight_scale: float
    bias: Optional[np.ndarray]
    input_params: Optional[QuantizationParameters]
    linear_out_params: Optional[QuantizationParameters]
    adjacency_params: Optional[QuantizationParameters]
    aggregate_out_params: Optional[QuantizationParameters]
    weight_bits: int
    adjacency_bits: int


def _parameters_of(quantizer) -> Optional[QuantizationParameters]:
    """Quantization parameters of an :class:`AffineQuantizer`, None for identity."""
    if isinstance(quantizer, IdentityQuantizer) or not isinstance(quantizer, AffineQuantizer):
        return None
    return quantizer.quantization_parameters()


def _quantize_with(params: QuantizationParameters, values: np.ndarray) -> np.ndarray:
    scale, zero_point = params.as_scalars()
    return np.clip(np.rint(values / scale) + zero_point, params.qmin, params.qmax)


def _dequantize_with(params: QuantizationParameters, integers: np.ndarray) -> np.ndarray:
    scale, zero_point = params.as_scalars()
    return (integers - zero_point) * scale


class IntegerGCNInference:
    """Integer-arithmetic inference engine for a quantized GCN node classifier.

    Build it from a trained model with :meth:`from_quantized_model`, then call
    :meth:`predict` (float logits) or :meth:`predict_classes`.
    """

    def __init__(self, layer_plans: List[_LayerPlan]):
        if not layer_plans:
            raise ValueError("the inference engine needs at least one layer")
        self.layer_plans = layer_plans

    # ------------------------------------------------------------------ #
    @classmethod
    def from_quantized_model(cls, model: QuantNodeClassifier) -> "IntegerGCNInference":
        """Extract integer weights and fused quantization parameters from a model.

        Only GCN-style layers are supported (the architecture Theorem 1 is
        verified on in the paper); the model should be trained (its observers
        initialised) and in eval mode.
        """
        plans: List[_LayerPlan] = []
        for conv in model.convs:
            if not isinstance(conv, QuantGCNConv):
                raise TypeError("IntegerGCNInference supports QuantGCNConv layers only")
            weight = conv.linear.weight.data.astype(np.float64)
            weight_quantizer = conv.weight_quantizer
            if isinstance(weight_quantizer, AffineQuantizer):
                weight_int, weight_params = weight_quantizer.quantize_array(
                    weight, update_range=False)
                weight_scale, _ = weight_params.as_scalars()
                weight_bits = weight_params.bits
            else:
                weight_int = weight
                weight_scale = 1.0
                weight_bits = 32
            bias = None if conv.linear.bias is None else conv.linear.bias.data.copy()
            plans.append(_LayerPlan(
                weight_int=np.asarray(weight_int, dtype=np.float64),
                weight_scale=float(weight_scale),
                bias=bias,
                input_params=_parameters_of(conv.input_quantizer),
                linear_out_params=_parameters_of(conv.linear_out_quantizer),
                adjacency_params=_parameters_of(conv.adjacency_quantizer),
                aggregate_out_params=_parameters_of(conv.aggregate_out_quantizer),
                weight_bits=weight_bits,
                adjacency_bits=int(getattr(conv.adjacency_quantizer, "bits", 32)),
            ))
        return cls(plans)

    # ------------------------------------------------------------------ #
    def predict(self, graph: Graph) -> np.ndarray:
        """Float logits computed through integer matrix arithmetic."""
        adjacency = graph.normalized_adjacency()
        activations = graph.x.astype(np.float64)
        last = len(self.layer_plans) - 1
        for index, plan in enumerate(self.layer_plans):
            # --- input quantization (first layer only, per the paper) -------
            if plan.input_params is not None:
                activations = _dequantize_with(
                    plan.input_params, _quantize_with(plan.input_params, activations))

            # --- linear transform with the integer weight -------------------
            transformed = activations @ (plan.weight_int * plan.weight_scale)
            if plan.bias is not None:
                transformed = transformed + plan.bias
            if plan.linear_out_params is not None:
                transformed_int = _quantize_with(plan.linear_out_params, transformed)
                params_x = plan.linear_out_params
            else:
                transformed_int = transformed
                params_x = None

            # --- aggregation via Theorem 1 ----------------------------------
            if plan.adjacency_params is not None and params_x is not None:
                scale_a, _ = plan.adjacency_params.as_scalars()
                scale_x, zero_x = params_x.as_scalars()
                adjacency_int = adjacency.with_values(
                    _quantize_with(plan.adjacency_params,
                                   adjacency.values.astype(np.float64)).astype(np.float32))
                aggregated = quantized_spmm(adjacency_int, scale_a, transformed_int,
                                            scale_x, zero_x)
            else:
                dequantized = transformed if params_x is None else \
                    _dequantize_with(params_x, transformed_int)
                aggregated = np.asarray(adjacency.csr @ dequantized, dtype=np.float64)

            if plan.aggregate_out_params is not None:
                aggregated = _dequantize_with(
                    plan.aggregate_out_params,
                    _quantize_with(plan.aggregate_out_params, aggregated))

            activations = aggregated
            if index != last:
                activations = np.maximum(activations, 0.0)  # ReLU between layers
        return activations

    def predict_classes(self, graph: Graph) -> np.ndarray:
        """Arg-max class predictions."""
        return self.predict(graph).argmax(axis=1)

    def bit_operations(self, graph: Graph) -> BitOpsCounter:
        """BitOPs of one integer inference pass (mirrors the QAT model's count)."""
        counter = BitOpsCounter()
        nnz = graph.adjacency(add_self_loops=True).nnz
        for index, plan in enumerate(self.layer_plans):
            out_features = plan.weight_int.shape[1]
            in_features = plan.weight_int.shape[0]
            transform_bits = plan.weight_bits
            counter.add(f"layer{index}.transform",
                        2 * graph.num_nodes * in_features * out_features, transform_bits)
            aggregate_bits = plan.adjacency_bits if plan.linear_out_params is None \
                else max(plan.adjacency_bits, plan.linear_out_params.bits)
            counter.add(f"layer{index}.aggregate", 2 * nnz * out_features,
                        min(aggregate_bits, 32))
        return counter
