"""Degree-Quant (Tailor et al., ICLR 2021) — the DQ baseline and quantizer.

Degree-Quant makes two changes to plain quantization-aware training:

1. **Stochastic degree-based protection** — during training, each node is
   kept in full precision with probability ``p_v`` interpolated between
   ``p_min`` and ``p_max`` according to its in-degree rank, because high
   in-degree nodes accumulate the largest aggregation error.
2. **Percentile-based ranges** — quantization ranges are taken from clipped
   percentiles instead of the raw min/max, reducing the variance of the
   aggregation output.

The :class:`DegreeQuantizer` plugs into the quantized modules through the
``quantizer_factory`` hook, which is also how the paper's "MixQ + DQ"
integration (Table 4 / Table 5) is reproduced here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.nn.module import Module
from repro.quant.quantizer import AffineQuantizer, IdentityQuantizer
from repro.quant.qmodules import QuantizerFactory, default_quantizer_factory
from repro.tensor.tensor import Tensor


def degree_protection_probabilities(graph: Graph, p_min: float = 0.0,
                                    p_max: float = 0.1) -> np.ndarray:
    """Per-node protection probability interpolated over the in-degree ranking."""
    if not 0.0 <= p_min <= p_max <= 1.0:
        raise ValueError("expected 0 <= p_min <= p_max <= 1")
    degrees = graph.in_degrees().astype(np.float64)
    order = degrees.argsort()
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(graph.num_nodes)
    if graph.num_nodes > 1:
        ranks = ranks / (graph.num_nodes - 1)
    return (p_min + (p_max - p_min) * ranks).astype(np.float64)


class DegreeQuantizer(AffineQuantizer):
    """Affine quantizer with stochastic degree-based full-precision protection.

    The protection probabilities are node-indexed; they are attached with
    :meth:`set_probabilities` (usually via :func:`attach_degree_probabilities`)
    and only apply to tensors whose first dimension equals the number of
    nodes — weights and graph-level tensors fall back to plain quantization.

    In minibatch mode the activation rows are block-local, so
    :meth:`set_active_block` (called by
    :func:`~repro.gnn.models.forward_blocks` before every layer) tells the
    quantizer which global node ids the rows of the current tensor carry;
    the per-node probabilities are then gathered for exactly those nodes.
    """

    def __init__(self, bits: int = 8, signed: bool = True, symmetric: bool = False,
                 percentile: float = 0.001,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(bits=bits, signed=signed, symmetric=symmetric,
                         observer="percentile", percentile=percentile)
        self.probabilities: Optional[np.ndarray] = None
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._block = None

    def set_probabilities(self, probabilities: np.ndarray) -> None:
        self.probabilities = np.asarray(probabilities, dtype=np.float64)

    def set_active_block(self, block) -> None:
        """Align protection with a bipartite block's node ids (None to clear)."""
        self._block = block

    def _row_probabilities(self, num_rows: int) -> Optional[np.ndarray]:
        if self.probabilities is None:
            return None
        if self._block is not None:
            # Source rows start with the target rows, so matching num_src
            # first is safe even when the two sides coincide.
            if num_rows == self._block.num_src:
                return self.probabilities[self._block.src_nodes]
            if num_rows == self._block.num_dst:
                return self.probabilities[self._block.dst_nodes]
            return None
        if num_rows != self.probabilities.shape[0]:
            return None
        return self.probabilities

    def fake_quantize(self, x: Tensor) -> Tensor:
        quantized = super().fake_quantize(x)
        probabilities = self._row_probabilities(x.shape[0]) if self.training else None
        if probabilities is None:
            return quantized
        protected = (self._rng.random(x.shape[0]) < probabilities)
        if not protected.any():
            return quantized
        mask = protected.astype(np.float32).reshape(-1, *([1] * (x.ndim - 1)))
        mask_t = Tensor(mask)
        # Protected rows keep the full-precision value; the rest use the
        # fake-quantized value.  Both paths stay differentiable.
        return x * mask_t + quantized * (1.0 - mask_t)

    def __repr__(self) -> str:
        return f"DegreeQuantizer(bits={self.bits}, symmetric={self.symmetric})"


def degree_quant_factory(p_min: float = 0.0, p_max: float = 0.1,
                         rng: Optional[np.random.Generator] = None) -> QuantizerFactory:
    """Build a quantizer factory that uses :class:`DegreeQuantizer` for activations.

    Weights and adjacency values use the default symmetric quantizers — DQ
    only protects node-feature tensors.
    """

    def factory(bits: int, kind: str) -> Module:
        if bits >= 32:
            return IdentityQuantizer()
        if kind == "activation":
            return DegreeQuantizer(bits=bits, rng=rng)
        return default_quantizer_factory(bits, kind)

    return factory


def attach_degree_probabilities(model: Module, graph: Graph,
                                p_min: float = 0.0, p_max: float = 0.1) -> int:
    """Attach degree-protection probabilities to every DegreeQuantizer in ``model``.

    Returns the number of quantizers configured.
    """
    probabilities = degree_protection_probabilities(graph, p_min=p_min, p_max=p_max)
    configured = 0
    for module in model.modules():
        if isinstance(module, DegreeQuantizer):
            module.set_probabilities(probabilities)
            configured += 1
    return configured
