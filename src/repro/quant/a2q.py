"""Aggregation-Aware Quantization (Zhu et al., ICLR 2023) — the A²Q baseline.

A²Q assigns every node its own learnable quantization *scale* and *bit-width*
and adds a memory-size penalty so the average bit-width stays small.  This
reimplementation keeps the defining characteristics the paper's comparison
relies on:

* per-node learnable scale ``s_v`` and continuous bit-width ``b_v`` trained
  with straight-through gradients;
* a memory penalty ``lambda * sum_v b_v * f`` driving compression;
* the parameter count grows with the number of nodes (the over-
  parameterisation the paper's complexity table calls out).

The node-classification wrapper :class:`A2QNodeClassifier` quantizes node
features entering every message-passing layer with the per-node quantizers
while keeping weights at INT8, mirroring the reference implementation's
aggregation-focused design.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.gnn.message_passing import MessagePassing
from repro.graphs.graph import Graph
from repro.nn.activations import Dropout, ReLU
from repro.nn.module import Module, ModuleList, Parameter
from repro.quant.bitops import BitOpsCounter, FP32_BITS
from repro.quant.qmodules import QuantGCNConv, default_quantizer_factory
from repro.tensor.tensor import Tensor


class A2QQuantizer(Module):
    """Per-node learnable quantizer with learnable continuous bit-widths."""

    def __init__(self, num_nodes: int, init_bits: float = 4.0, min_bits: float = 2.0,
                 max_bits: float = 8.0, init_scale: float = 0.05):
        super().__init__()
        self.num_nodes = num_nodes
        self.min_bits = min_bits
        self.max_bits = max_bits
        self.log_scale = Parameter(
            np.full((num_nodes, 1), np.log(init_scale), dtype=np.float32), name="log_scale")
        self.bit_width = Parameter(
            np.full((num_nodes, 1), init_bits, dtype=np.float32), name="bit_width")

    def effective_bits(self) -> np.ndarray:
        """Rounded, clipped per-node bit-widths (used at inference time)."""
        return np.clip(np.rint(self.bit_width.data), self.min_bits, self.max_bits)

    def average_bits(self) -> float:
        return float(self.effective_bits().mean())

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[0] != self.num_nodes:
            return x
        scale = self.log_scale.exp()
        bits = self.bit_width.clamp(self.min_bits, self.max_bits)
        # Signed grid: the per-node clipping bound is 2^(b-1) - 1.
        bound = ((bits - 1.0) * float(np.log(2.0))).exp() - 1.0
        quantized = (x / scale).round_ste()
        quantized = _clamp_rowwise(quantized, bound)
        return quantized * scale

    def memory_penalty(self, num_features: int) -> Tensor:
        """Differentiable memory-size penalty in megabytes."""
        bits = self.bit_width.clamp(self.min_bits, self.max_bits)
        return bits.sum() * (num_features / (1024.0 * 8.0 * 1024.0))


def _clamp_rowwise(x: Tensor, bound: Tensor) -> Tensor:
    """Clamp every row of ``x`` into ``[-bound_row, bound_row]`` differentiably."""
    upper = bound
    lower = -bound
    below = (x - lower).relu() + lower
    return upper - (upper - below).relu()


class A2QNodeClassifier(Module):
    """GCN node classifier with A²Q per-node quantization on layer inputs."""

    def __init__(self, layer_dims: List[tuple], num_nodes: int, dropout: float = 0.5,
                 init_bits: float = 4.0, weight_bits: int = 8,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        convs: List[MessagePassing] = []
        quantizers: List[A2QQuantizer] = []
        for index, (fan_in, fan_out) in enumerate(layer_dims):
            bits = {"weight": weight_bits, "linear_out": weight_bits,
                    "adjacency": FP32_BITS, "aggregate_out": FP32_BITS}
            convs.append(QuantGCNConv(fan_in, fan_out, bits, quantize_input=False,
                                      quantize_output=False,
                                      quantizer_factory=default_quantizer_factory, rng=rng))
            quantizers.append(A2QQuantizer(num_nodes, init_bits=init_bits))
        self.convs = ModuleList(convs)
        self.node_quantizers = ModuleList(quantizers)
        self.activation = ReLU()
        self.dropout = Dropout(dropout, rng=rng)
        self.weight_bits = weight_bits

    def forward(self, graph: Graph, x: Optional[Tensor] = None) -> Tensor:
        if x is None:
            x = Tensor(graph.x)
        num_layers = len(self.convs)
        for index, (conv, quantizer) in enumerate(zip(self.convs, self.node_quantizers)):
            x = quantizer(x)
            x = conv(x, graph)
            if index < num_layers - 1:
                x = self.activation(x)
                x = self.dropout(x)
        return x

    # ------------------------------------------------------------------ #
    def memory_penalty(self, graph: Graph) -> Tensor:
        """Total memory penalty over all per-node quantizers."""
        total = None
        for quantizer in self.node_quantizers:
            term = quantizer.memory_penalty(graph.num_features)
            total = term if total is None else total + term
        return total

    def average_bits(self) -> float:
        node_bits = [quantizer.average_bits() for quantizer in self.node_quantizers]
        return float(np.mean(node_bits))

    def bit_operations(self, graph: Graph) -> BitOpsCounter:
        counter = BitOpsCounter()
        incoming = FP32_BITS
        for index, (conv, quantizer) in enumerate(zip(self.convs, self.node_quantizers)):
            activation_bits = int(round(quantizer.average_bits()))
            layer_counter, incoming = conv.bit_operations(
                graph, max(activation_bits, 1), f"conv{index}")
            counter.extend(layer_counter)
        return counter

    def num_quantization_parameters(self) -> int:
        """Number of learnable quantization parameters (grows with the graph)."""
        return sum(q.log_scale.size + q.bit_width.size for q in self.node_quantizers)
