"""Bit Operations (BitOPs) efficiency metric — Section 5.1 of the paper.

An architecture is viewed as a collection of functions; each function
executes a number of scalar operations at a fixed bit-width.  The BitOPs of
a module is the operation count weighted by the bit-width, and the
architecture total is the sum over all modules.  The average bit-width
("Bits" in the paper's tables) is the unweighted mean of the bit-widths
assigned to the architecture's quantized components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

# Per-head attention operation counts: defined next to the attention edge
# list (repro.gnn.attention) so the float layers share them without a
# gnn -> quant dependency; re-exported here as the accounting-side import
# point for the QAT modules and the serving executor.
from repro.gnn.attention import (
    attention_aggregate_operations,
    gat_score_operations,
    transformer_score_operations,
)

FP32_BITS = 32

__all__ = [
    "FP32_BITS",
    "OperationRecord",
    "BitOpsCounter",
    "average_bits",
    "gat_score_operations",
    "transformer_score_operations",
    "attention_aggregate_operations",
]


@dataclass
class OperationRecord:
    """One function's contribution: ``operations`` scalar ops at ``bits`` width."""

    name: str
    operations: int
    bits: int

    @property
    def bit_operations(self) -> int:
        return self.operations * self.bits


@dataclass
class BitOpsCounter:
    """Accumulates :class:`OperationRecord` entries across an architecture."""

    records: List[OperationRecord] = field(default_factory=list)

    def add(self, name: str, operations: int, bits: int) -> None:
        if operations < 0:
            raise ValueError("operation count cannot be negative")
        if bits < 1:
            raise ValueError("bit-width must be at least 1")
        self.records.append(OperationRecord(name, int(operations), int(bits)))

    def extend(self, other: "BitOpsCounter") -> None:
        self.records.extend(other.records)

    # ------------------------------------------------------------------ #
    @property
    def total_operations(self) -> int:
        return sum(record.operations for record in self.records)

    @property
    def total_bit_operations(self) -> int:
        return sum(record.bit_operations for record in self.records)

    def giga_bit_operations(self) -> float:
        """Total BitOPs in units of 10^9 (the "GBitOPs" column of the tables)."""
        return self.total_bit_operations / 1e9

    def operation_weighted_bits(self) -> float:
        """Average bit-width weighted by the number of operations."""
        operations = self.total_operations
        if operations == 0:
            return float(FP32_BITS)
        return self.total_bit_operations / operations

    def per_function(self) -> Dict[str, int]:
        """BitOPs broken down per function name."""
        breakdown: Dict[str, int] = {}
        for record in self.records:
            breakdown[record.name] = breakdown.get(record.name, 0) + record.bit_operations
        return breakdown

    def __repr__(self) -> str:
        return (f"BitOpsCounter(functions={len(self.records)}, "
                f"GBitOPs={self.giga_bit_operations():.3f})")


def average_bits(component_bits: Iterable[int],
                 weights: Optional[Iterable[float]] = None) -> float:
    """Unweighted (or weighted) mean bit-width over the architecture components."""
    bits = list(component_bits)
    if not bits:
        return float(FP32_BITS)
    if weights is None:
        return float(sum(bits)) / len(bits)
    weights = list(weights)
    total_weight = sum(weights)
    if total_weight <= 0:
        return float(sum(bits)) / len(bits)
    return float(sum(b * w for b, w in zip(bits, weights)) / total_weight)
