"""Quantization substrate: quantizers, integer message passing, baselines.

The public surface mirrors the decomposition of the paper:

* :class:`AffineQuantizer` — quantization-aware-training quantizer with STE
  gradients (Equations 3-4).
* :mod:`repro.quant.integer_mp` — Theorem 1: exact integer message passing.
* :mod:`repro.quant.qmodules` — fixed-bit-width quantized GNN layers.
* :mod:`repro.quant.degree_quant` / :mod:`repro.quant.a2q` — the two prior
  methods the paper compares against (DQ and A²Q).
* :mod:`repro.quant.bitops` — the BitOPs efficiency metric (Section 5.1).

Deployment-time integer execution lives in :mod:`repro.serving`
(:class:`~repro.serving.QuantizedArtifact` + inference sessions);
:class:`IntegerGCNInference` remains here as a deprecated alias.
"""

from repro.quant.quantizer import AffineQuantizer, QuantizationParameters
from repro.quant.integer_mp import (
    QuantizedMessagePassingResult,
    integer_message_passing,
    quantized_spmm,
)
from repro.quant.bitops import BitOpsCounter, OperationRecord, FP32_BITS
from repro.quant.qmodules import (
    ComponentBits,
    QuantGATConv,
    QuantGCNConv,
    QuantGINConv,
    QuantSAGEConv,
    QuantTAGConv,
    QuantTransformerConv,
    QuantLinear,
    QuantNodeClassifier,
    QuantGraphClassifier,
    uniform_assignment,
)
from repro.quant.degree_quant import DegreeQuantizer, degree_protection_probabilities
from repro.quant.a2q import A2QQuantizer, A2QNodeClassifier
from repro.quant.complexity import complexity_table
from repro.quant.inference import IntegerGCNInference

__all__ = [
    "AffineQuantizer",
    "QuantizationParameters",
    "integer_message_passing",
    "quantized_spmm",
    "QuantizedMessagePassingResult",
    "BitOpsCounter",
    "OperationRecord",
    "FP32_BITS",
    "ComponentBits",
    "QuantGATConv",
    "QuantGCNConv",
    "QuantGINConv",
    "QuantSAGEConv",
    "QuantTAGConv",
    "QuantTransformerConv",
    "QuantLinear",
    "QuantNodeClassifier",
    "QuantGraphClassifier",
    "uniform_assignment",
    "DegreeQuantizer",
    "degree_protection_probabilities",
    "A2QQuantizer",
    "A2QNodeClassifier",
    "complexity_table",
    "IntegerGCNInference",
]
