"""Fixed-bit-width quantized GNN modules (quantization-aware training).

Each quantized layer owns one quantizer per *component* in the sense of the
paper: inputs, learnable parameters, the outputs of the message function,
the adjacency values, and the outputs of the aggregation.  Component
bit-widths are supplied as a flat assignment dictionary, e.g.::

    {"conv0.input": 8, "conv0.weight": 4, "conv0.linear_out": 4,
     "conv0.adjacency": 8, "conv0.aggregate_out": 8,
     "conv1.weight": 2, ...}

which is exactly the format produced by the MixQ-GNN bit-width search
(:mod:`repro.core.selection`), so a search result can be instantiated as a
quantized architecture directly.

A ``quantizer_factory`` hook decides which quantizer class realises each
component; the default uses :class:`AffineQuantizer`, and passing the
Degree-Quant factory (:func:`repro.quant.degree_quant.degree_quant_factory`)
reproduces the paper's "MixQ + DQ" integration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.gnn.attention import attention_edges, attention_head_dim
from repro.gnn.gat import GATConv, TransformerConv, head_scores, merge_heads
from repro.gnn.gcn import GCNConv
from repro.gnn.gin import GINConv
from repro.gnn.message_passing import GraphLike, MessagePassing
from repro.gnn.models import NodeClassifier, forward_blocks, head_merge_for_layer
from repro.gnn.sage import SAGEConv, mean_adjacency
from repro.gnn.tag import TAGConv, TAGGraphLike, hop_views
from repro.graphs.batch import GraphBatch
from repro.graphs.graph import Graph
from repro.graphs.sampling import BlockBatch, SubgraphBlock, target_features
from repro.graphs.pooling import get_pooling
from repro.nn import init
from repro.nn.activations import Dropout, ReLU
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList, Parameter
from repro.quant.bitops import (
    FP32_BITS,
    BitOpsCounter,
    attention_aggregate_operations,
    average_bits,
    gat_score_operations,
    transformer_score_operations,
)
from repro.quant.quantizer import AffineQuantizer, IdentityQuantizer
from repro.tensor import functional as F
from repro.tensor.sparse import SparseTensor, spmm
from repro.tensor.tensor import Tensor

#: Signature of a quantizer factory: ``factory(bits, kind)`` with ``kind`` one
#: of ``"activation"``, ``"weight"`` or ``"adjacency"``.
QuantizerFactory = Callable[[int, str], Module]

ComponentBits = Dict[str, int]
BitWidthAssignment = Dict[str, int]


def default_quantizer_factory(bits: int, kind: str) -> Module:
    """Native QAT quantizers: affine for activations, symmetric for the rest."""
    if bits >= FP32_BITS:
        return IdentityQuantizer()
    if kind == "activation":
        return AffineQuantizer(bits=bits, signed=True, symmetric=False, observer="ema")
    if kind == "weight":
        return AffineQuantizer(bits=bits, signed=True, symmetric=True, observer="minmax")
    if kind == "adjacency":
        return AffineQuantizer(bits=bits, signed=True, symmetric=True, observer="minmax")
    raise ValueError(f"unknown quantizer kind {kind!r}")


def _bits_of(quantizer: Module) -> int:
    return int(getattr(quantizer, "bits", FP32_BITS))


def set_active_block(module: Module, block) -> None:
    """Align node-indexed quantizers (Degree-Quant) inside ``module`` with a
    block's global node ids (duck-typed; ``None`` clears).

    Multi-hop layers call this per hop: the per-layer announcement made by
    :func:`~repro.gnn.models.forward_blocks` aligns only the layer's *input*
    block, while a TAG layer's hop outputs are row-indexed by each hop
    view's target side.
    """
    for sub in module.modules():
        if hasattr(sub, "set_active_block"):
            sub.set_active_block(block)


class _QuantizedAdjacencyCache:
    """Fake-quantizes adjacency values once per adjacency object.

    The cache stores the source adjacency alongside the quantized copy: the
    stored reference keeps the source alive, so an ``id()`` key can never be
    silently reused by a different (garbage-collected-and-reallocated)
    adjacency of another graph.
    """

    def __init__(self, quantizer: Module):
        self.quantizer = quantizer
        self._cache: dict[int, tuple[SparseTensor, SparseTensor]] = {}

    def __call__(self, adjacency: SparseTensor) -> SparseTensor:
        if isinstance(self.quantizer, IdentityQuantizer):
            return adjacency
        key = id(adjacency)
        entry = self._cache.get(key)
        if entry is None or entry[0] is not adjacency:
            integers, params = self.quantizer.quantize_array(adjacency.values)
            values = self.quantizer.dequantize_array(integers, params)
            self._cache[key] = (adjacency, adjacency.with_values(values.astype(np.float32)))
            if len(self._cache) > 8:
                self._cache.pop(next(iter(self._cache)))
        return self._cache[key][1]


class QuantLinear(Module):
    """Linear layer with fake-quantized weight and (optionally) output."""

    def __init__(self, in_features: int, out_features: int,
                 weight_bits: int = 8, output_bits: int = 8, bias: bool = True,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=bias, rng=rng)
        self.weight_quantizer = quantizer_factory(weight_bits, "weight")
        self.output_quantizer = quantizer_factory(output_bits, "activation")

    def forward(self, x: Tensor) -> Tensor:
        weight = self.weight_quantizer(self.linear.weight)
        out = x.matmul(weight)
        if self.linear.bias is not None:
            out = out + self.linear.bias
        return self.output_quantizer(out)

    def component_bits(self, prefix: str) -> ComponentBits:
        return {f"{prefix}.weight": _bits_of(self.weight_quantizer),
                f"{prefix}.output": _bits_of(self.output_quantizer)}

    def bit_operations(self, num_rows: int, incoming_bits: int,
                       prefix: str) -> tuple[BitOpsCounter, int]:
        counter = BitOpsCounter()
        bits = max(incoming_bits, _bits_of(self.weight_quantizer))
        counter.add(f"{prefix}.matmul", self.linear.operation_count(num_rows), bits)
        return counter, _bits_of(self.output_quantizer)


class QuantGCNConv(MessagePassing):
    """GCN convolution with per-component fake quantization.

    Components: ``input`` (first layer only), ``weight``, ``linear_out``,
    ``adjacency`` and ``aggregate_out`` — the decomposition used in the
    paper's two-layer GCN example (nine components across two layers).
    """

    COMPONENTS = ("input", "weight", "linear_out", "adjacency", "aggregate_out")

    def __init__(self, in_features: int, out_features: int, bits: ComponentBits,
                 quantize_input: bool = False, quantize_output: bool = True,
                 bias: bool = True,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input
        self.quantize_output = quantize_output
        self.linear = Linear(in_features, out_features, bias=bias, rng=rng)

        def build(component: str, kind: str) -> Module:
            return quantizer_factory(int(bits.get(component, FP32_BITS)), kind)

        self.input_quantizer = build("input", "activation") if quantize_input \
            else IdentityQuantizer()
        self.weight_quantizer = build("weight", "weight")
        self.linear_out_quantizer = build("linear_out", "activation")
        self.adjacency_quantizer = build("adjacency", "adjacency")
        self.aggregate_out_quantizer = build("aggregate_out", "activation") \
            if quantize_output else IdentityQuantizer()
        self._adjacency_cache = _QuantizedAdjacencyCache(self.adjacency_quantizer)

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        x = self.input_quantizer(x)
        weight = self.weight_quantizer(self.linear.weight)
        transformed = x.matmul(weight)
        if self.linear.bias is not None:
            transformed = transformed + self.linear.bias
        transformed = self.linear_out_quantizer(transformed)
        adjacency = self._adjacency_cache(graph.normalized_adjacency())
        aggregated = spmm(adjacency, transformed)
        return self.aggregate_out_quantizer(aggregated)

    # ------------------------------------------------------------------ #
    def component_bits(self, prefix: str) -> ComponentBits:
        bits: ComponentBits = {}
        if self.quantize_input:
            bits[f"{prefix}.input"] = _bits_of(self.input_quantizer)
        bits[f"{prefix}.weight"] = _bits_of(self.weight_quantizer)
        bits[f"{prefix}.linear_out"] = _bits_of(self.linear_out_quantizer)
        bits[f"{prefix}.adjacency"] = _bits_of(self.adjacency_quantizer)
        bits[f"{prefix}.aggregate_out"] = _bits_of(self.aggregate_out_quantizer)
        return bits

    def bit_operations(self, graph: Graph, incoming_bits: int,
                       prefix: str) -> tuple[BitOpsCounter, int]:
        counter = BitOpsCounter()
        input_bits = _bits_of(self.input_quantizer) if self.quantize_input else incoming_bits
        transform_bits = max(input_bits, _bits_of(self.weight_quantizer))
        counter.add(f"{prefix}.transform", self.linear.operation_count(graph.num_nodes),
                    transform_bits)
        aggregate_bits = max(_bits_of(self.adjacency_quantizer),
                             _bits_of(self.linear_out_quantizer))
        counter.add(f"{prefix}.aggregate",
                    self.aggregation_operations(graph, self.out_features), aggregate_bits)
        outgoing = _bits_of(self.aggregate_out_quantizer) if self.quantize_output \
            else aggregate_bits
        return counter, outgoing


class QuantGINConv(MessagePassing):
    """GIN convolution with per-component fake quantization.

    Components: ``input`` (first layer only), ``adjacency``,
    ``aggregate_out``, ``weight_0`` / ``weight_1`` (the two MLP layers) and
    ``output``.
    """

    COMPONENTS = ("input", "adjacency", "aggregate_out", "weight_0", "weight_1", "output")

    def __init__(self, in_features: int, out_features: int, bits: ComponentBits,
                 quantize_input: bool = False,
                 hidden_features: Optional[int] = None,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input
        hidden = hidden_features if hidden_features is not None else out_features
        self.hidden_features = hidden

        def bit(component: str) -> int:
            return int(bits.get(component, FP32_BITS))

        self.input_quantizer = quantizer_factory(bit("input"), "activation") \
            if quantize_input else IdentityQuantizer()
        self.adjacency_quantizer = quantizer_factory(bit("adjacency"), "adjacency")
        self.aggregate_out_quantizer = quantizer_factory(bit("aggregate_out"), "activation")
        self.mlp_first = QuantLinear(in_features, hidden, weight_bits=bit("weight_0"),
                                     output_bits=bit("aggregate_out"),
                                     quantizer_factory=quantizer_factory, rng=rng)
        self.mlp_second = QuantLinear(hidden, out_features, weight_bits=bit("weight_1"),
                                      output_bits=bit("output"),
                                      quantizer_factory=quantizer_factory, rng=rng)
        self.activation = ReLU()
        self.eps = 0.0
        self._adjacency_cache = _QuantizedAdjacencyCache(self.adjacency_quantizer)

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        x = self.input_quantizer(x)
        adjacency = self._adjacency_cache(graph.adjacency(add_self_loops=False))
        aggregated = spmm(adjacency, x)
        combined = target_features(x, graph) * (1.0 + self.eps) + aggregated
        combined = self.aggregate_out_quantizer(combined)
        hidden = self.activation(self.mlp_first(combined))
        return self.mlp_second(hidden)

    def component_bits(self, prefix: str) -> ComponentBits:
        bits: ComponentBits = {}
        if self.quantize_input:
            bits[f"{prefix}.input"] = _bits_of(self.input_quantizer)
        bits[f"{prefix}.adjacency"] = _bits_of(self.adjacency_quantizer)
        bits[f"{prefix}.aggregate_out"] = _bits_of(self.aggregate_out_quantizer)
        bits[f"{prefix}.weight_0"] = _bits_of(self.mlp_first.weight_quantizer)
        bits[f"{prefix}.weight_1"] = _bits_of(self.mlp_second.weight_quantizer)
        bits[f"{prefix}.output"] = _bits_of(self.mlp_second.output_quantizer)
        return bits

    def bit_operations(self, graph: Graph, incoming_bits: int,
                       prefix: str) -> tuple[BitOpsCounter, int]:
        counter = BitOpsCounter()
        input_bits = _bits_of(self.input_quantizer) if self.quantize_input else incoming_bits
        aggregate_bits = max(_bits_of(self.adjacency_quantizer), input_bits)
        counter.add(f"{prefix}.aggregate",
                    self.aggregation_operations(graph, self.in_features), aggregate_bits)
        counter.add(f"{prefix}.combine", 2 * graph.num_nodes * self.in_features,
                    aggregate_bits)
        first, bits_after_first = self.mlp_first.bit_operations(
            graph.num_nodes, _bits_of(self.aggregate_out_quantizer), f"{prefix}.mlp0")
        counter.extend(first)
        second, outgoing = self.mlp_second.bit_operations(
            graph.num_nodes, bits_after_first, f"{prefix}.mlp1")
        counter.extend(second)
        return counter, outgoing


class QuantSAGEConv(MessagePassing):
    """GraphSAGE convolution with per-component fake quantization.

    Components: ``input`` (first layer only), ``adjacency``,
    ``aggregate_out``, ``weight_root``, ``weight_neighbour`` and ``output``.
    """

    COMPONENTS = ("input", "adjacency", "aggregate_out", "weight_root",
                  "weight_neighbour", "output")

    def __init__(self, in_features: int, out_features: int, bits: ComponentBits,
                 quantize_input: bool = False,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input

        def bit(component: str) -> int:
            return int(bits.get(component, FP32_BITS))

        self.input_quantizer = quantizer_factory(bit("input"), "activation") \
            if quantize_input else IdentityQuantizer()
        self.adjacency_quantizer = quantizer_factory(bit("adjacency"), "adjacency")
        self.aggregate_out_quantizer = quantizer_factory(bit("aggregate_out"), "activation")
        self.linear_root = Linear(in_features, out_features, bias=True, rng=rng)
        self.linear_neighbour = Linear(in_features, out_features, bias=False, rng=rng)
        self.weight_root_quantizer = quantizer_factory(bit("weight_root"), "weight")
        self.weight_neighbour_quantizer = quantizer_factory(bit("weight_neighbour"), "weight")
        self.output_quantizer = quantizer_factory(bit("output"), "activation")
        self._adjacency_cache = _QuantizedAdjacencyCache(self.adjacency_quantizer)

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        x = self.input_quantizer(x)
        adjacency = self._adjacency_cache(mean_adjacency(graph))
        aggregated = self.aggregate_out_quantizer(spmm(adjacency, x))
        weight_root = self.weight_root_quantizer(self.linear_root.weight)
        weight_neighbour = self.weight_neighbour_quantizer(self.linear_neighbour.weight)
        out = target_features(x, graph).matmul(weight_root) + self.linear_root.bias \
            + aggregated.matmul(weight_neighbour)
        return self.output_quantizer(out)

    def component_bits(self, prefix: str) -> ComponentBits:
        bits: ComponentBits = {}
        if self.quantize_input:
            bits[f"{prefix}.input"] = _bits_of(self.input_quantizer)
        bits[f"{prefix}.adjacency"] = _bits_of(self.adjacency_quantizer)
        bits[f"{prefix}.aggregate_out"] = _bits_of(self.aggregate_out_quantizer)
        bits[f"{prefix}.weight_root"] = _bits_of(self.weight_root_quantizer)
        bits[f"{prefix}.weight_neighbour"] = _bits_of(self.weight_neighbour_quantizer)
        bits[f"{prefix}.output"] = _bits_of(self.output_quantizer)
        return bits

    def bit_operations(self, graph: Graph, incoming_bits: int,
                       prefix: str) -> tuple[BitOpsCounter, int]:
        counter = BitOpsCounter()
        input_bits = _bits_of(self.input_quantizer) if self.quantize_input else incoming_bits
        aggregate_bits = max(_bits_of(self.adjacency_quantizer), input_bits)
        counter.add(f"{prefix}.aggregate",
                    self.aggregation_operations(graph, self.in_features), aggregate_bits)
        counter.add(f"{prefix}.transform_root",
                    self.linear_root.operation_count(graph.num_nodes),
                    max(input_bits, _bits_of(self.weight_root_quantizer)))
        counter.add(f"{prefix}.transform_neighbour",
                    self.linear_neighbour.operation_count(graph.num_nodes),
                    max(_bits_of(self.aggregate_out_quantizer),
                        _bits_of(self.weight_neighbour_quantizer)))
        return counter, _bits_of(self.output_quantizer)


class QuantGATConv(MessagePassing):
    """Multi-head GAT convolution with per-component fake quantization.

    Components: ``input`` (first layer only), ``weight`` (the feature
    transform), ``linear_out``, ``attention`` (the post-softmax attention
    coefficients, quantized symmetrically like an adjacency) and
    ``aggregate_out``.  The attention parameter vectors and the score /
    softmax stage stay in full precision — only the coefficient matrix that
    weights the aggregation is quantized, which is what lets the serving
    executor run the aggregation as an integer per-edge score plan.  Heads
    add a score column each (coefficients ``(E, H)``, one shared
    ``attention`` quantizer) and never change the component set.
    """

    COMPONENTS = ("input", "weight", "linear_out", "attention", "aggregate_out")

    def __init__(self, in_features: int, out_features: int, bits: ComponentBits,
                 quantize_input: bool = False, negative_slope: float = 0.2,
                 heads: int = 1, head_merge: str = "concat",
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input
        self.negative_slope = negative_slope
        self.heads = int(heads)
        self.head_merge = head_merge
        self.head_dim = attention_head_dim(out_features, self.heads, head_merge)
        width = self.heads * self.head_dim
        self.linear = Linear(in_features, width, bias=False, rng=rng)
        self.attention_src = Parameter(init.glorot_uniform((self.head_dim, self.heads),
                                                           rng=rng),
                                       name="attention_src")
        self.attention_dst = Parameter(init.glorot_uniform((self.head_dim, self.heads),
                                                           rng=rng),
                                       name="attention_dst")
        self.bias = Parameter(init.zeros((out_features,)), name="bias")

        def bit(component: str) -> int:
            return int(bits.get(component, FP32_BITS))

        self.input_quantizer = quantizer_factory(bit("input"), "activation") \
            if quantize_input else IdentityQuantizer()
        self.weight_quantizer = quantizer_factory(bit("weight"), "weight")
        self.linear_out_quantizer = quantizer_factory(bit("linear_out"), "activation")
        self.attention_quantizer = quantizer_factory(bit("attention"), "adjacency")
        self.aggregate_out_quantizer = quantizer_factory(bit("aggregate_out"),
                                                         "activation")

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        x = self.input_quantizer(x)
        weight = self.weight_quantizer(self.linear.weight)
        transformed = self.linear_out_quantizer(x.matmul(weight))
        edges = attention_edges(graph)
        score_src = head_scores(transformed, self.attention_src,
                                self.heads, self.head_dim)
        score_dst = head_scores(transformed, self.attention_dst,
                                self.heads, self.head_dim)
        edge_scores = F.leaky_relu(score_src[edges.src] + score_dst[edges.dst],
                                   negative_slope=self.negative_slope)
        attention = F.scatter_softmax(edge_scores, edges.dst, edges.num_dst)
        attention = self.attention_quantizer(attention)
        per_head = transformed.reshape(-1, self.heads, self.head_dim)
        messages = per_head[edges.src] * attention.reshape(-1, self.heads, 1)
        aggregated = F.segment_sum(messages, edges.dst, edges.num_dst)
        merged = merge_heads(aggregated, self.heads, self.head_dim,
                             self.head_merge)
        return self.aggregate_out_quantizer(merged + self.bias)

    def component_bits(self, prefix: str) -> ComponentBits:
        bits: ComponentBits = {}
        if self.quantize_input:
            bits[f"{prefix}.input"] = _bits_of(self.input_quantizer)
        bits[f"{prefix}.weight"] = _bits_of(self.weight_quantizer)
        bits[f"{prefix}.linear_out"] = _bits_of(self.linear_out_quantizer)
        bits[f"{prefix}.attention"] = _bits_of(self.attention_quantizer)
        bits[f"{prefix}.aggregate_out"] = _bits_of(self.aggregate_out_quantizer)
        return bits

    def bit_operations(self, graph: Graph, incoming_bits: int,
                       prefix: str) -> tuple[BitOpsCounter, int]:
        counter = BitOpsCounter()
        num_nodes = graph.num_nodes
        num_edges = graph.adjacency(add_self_loops=False).nnz + num_nodes
        width = self.heads * self.head_dim
        input_bits = _bits_of(self.input_quantizer) if self.quantize_input \
            else incoming_bits
        counter.add(f"{prefix}.transform",
                    2 * num_nodes * self.in_features * width,
                    max(input_bits, _bits_of(self.weight_quantizer)))
        # Score projections + per-edge leaky-relu/softmax stay FP32.
        counter.add(f"{prefix}.score",
                    gat_score_operations(num_nodes, num_edges, self.heads,
                                         self.head_dim), FP32_BITS)
        counter.add(f"{prefix}.aggregate",
                    attention_aggregate_operations(num_edges, self.heads,
                                                   self.head_dim),
                    max(_bits_of(self.attention_quantizer),
                        _bits_of(self.linear_out_quantizer)))
        return counter, _bits_of(self.aggregate_out_quantizer)


class QuantTransformerConv(MessagePassing):
    """Multi-head transformer convolution with per-component fake quantization.

    Components: ``input`` (first layer only), ``weight_query`` /
    ``weight_key`` / ``weight_value``, ``value_out``, ``attention`` (the
    post-softmax coefficients) and ``aggregate_out``.  Scores (scaled
    query·key dot products, one column per head) and the softmax stay in
    full precision; heads never change the component set.
    """

    COMPONENTS = ("input", "weight_query", "weight_key", "weight_value",
                  "value_out", "attention", "aggregate_out")

    def __init__(self, in_features: int, out_features: int, bits: ComponentBits,
                 quantize_input: bool = False, heads: int = 1,
                 head_merge: str = "concat",
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input
        self.heads = int(heads)
        self.head_merge = head_merge
        self.head_dim = attention_head_dim(out_features, self.heads, head_merge)
        width = self.heads * self.head_dim
        self.query = Linear(in_features, width, bias=False, rng=rng)
        self.key = Linear(in_features, width, bias=False, rng=rng)
        self.value = Linear(in_features, width, bias=True, rng=rng)

        def bit(component: str) -> int:
            return int(bits.get(component, FP32_BITS))

        self.input_quantizer = quantizer_factory(bit("input"), "activation") \
            if quantize_input else IdentityQuantizer()
        self.weight_query_quantizer = quantizer_factory(bit("weight_query"), "weight")
        self.weight_key_quantizer = quantizer_factory(bit("weight_key"), "weight")
        self.weight_value_quantizer = quantizer_factory(bit("weight_value"), "weight")
        self.value_out_quantizer = quantizer_factory(bit("value_out"), "activation")
        self.attention_quantizer = quantizer_factory(bit("attention"), "adjacency")
        self.aggregate_out_quantizer = quantizer_factory(bit("aggregate_out"),
                                                         "activation")

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        x = self.input_quantizer(x)
        queries = x.matmul(self.weight_query_quantizer(self.query.weight))
        keys = x.matmul(self.weight_key_quantizer(self.key.weight))
        values = x.matmul(self.weight_value_quantizer(self.value.weight)) \
            + self.value.bias
        values = self.value_out_quantizer(values)
        edges = attention_edges(graph)
        queries = queries.reshape(-1, self.heads, self.head_dim)
        keys = keys.reshape(-1, self.heads, self.head_dim)
        values = values.reshape(-1, self.heads, self.head_dim)
        scale = 1.0 / np.sqrt(self.head_dim)
        edge_scores = (queries[edges.dst] * keys[edges.src]).sum(axis=-1) * scale
        attention = F.scatter_softmax(edge_scores, edges.dst, edges.num_dst)
        attention = self.attention_quantizer(attention)
        messages = values[edges.src] * attention.reshape(-1, self.heads, 1)
        aggregated = F.segment_sum(messages, edges.dst, edges.num_dst)
        merged = merge_heads(aggregated, self.heads, self.head_dim,
                             self.head_merge)
        return self.aggregate_out_quantizer(merged)

    def component_bits(self, prefix: str) -> ComponentBits:
        bits: ComponentBits = {}
        if self.quantize_input:
            bits[f"{prefix}.input"] = _bits_of(self.input_quantizer)
        bits[f"{prefix}.weight_query"] = _bits_of(self.weight_query_quantizer)
        bits[f"{prefix}.weight_key"] = _bits_of(self.weight_key_quantizer)
        bits[f"{prefix}.weight_value"] = _bits_of(self.weight_value_quantizer)
        bits[f"{prefix}.value_out"] = _bits_of(self.value_out_quantizer)
        bits[f"{prefix}.attention"] = _bits_of(self.attention_quantizer)
        bits[f"{prefix}.aggregate_out"] = _bits_of(self.aggregate_out_quantizer)
        return bits

    def bit_operations(self, graph: Graph, incoming_bits: int,
                       prefix: str) -> tuple[BitOpsCounter, int]:
        counter = BitOpsCounter()
        num_nodes = graph.num_nodes
        num_edges = graph.adjacency(add_self_loops=False).nnz + num_nodes
        width = self.heads * self.head_dim
        input_bits = _bits_of(self.input_quantizer) if self.quantize_input \
            else incoming_bits
        transform_ops = 2 * num_nodes * self.in_features * width
        for name, quantizer in (("query", self.weight_query_quantizer),
                                ("key", self.weight_key_quantizer),
                                ("value", self.weight_value_quantizer)):
            counter.add(f"{prefix}.transform_{name}", transform_ops,
                        max(input_bits, _bits_of(quantizer)))
        counter.add(f"{prefix}.score",
                    transformer_score_operations(num_edges, self.heads,
                                                 self.head_dim), FP32_BITS)
        counter.add(f"{prefix}.aggregate",
                    attention_aggregate_operations(num_edges, self.heads,
                                                   self.head_dim),
                    max(_bits_of(self.attention_quantizer),
                        _bits_of(self.value_out_quantizer)))
        return counter, _bits_of(self.aggregate_out_quantizer)


class QuantTAGConv(MessagePassing):
    """TAG convolution with per-component fake quantization.

    Components: ``input`` (first layer only), ``adjacency``, ``hop_out``
    (the propagated features after every hop, one shared quantizer),
    ``weight_0`` … ``weight_K`` (one per adjacency power) and ``output``.
    In minibatch mode the layer consumes ``hops`` stacked blocks — its
    per-layer hop plan — exactly like the float :class:`TAGConv`.
    """

    def __init__(self, in_features: int, out_features: int, bits: ComponentBits,
                 quantize_input: bool = False, hops: int = 3,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if hops < 1:
            raise ValueError("QuantTAGConv needs at least one hop")
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input
        self.hops = hops
        self.linears = ModuleList(
            [Linear(in_features, out_features, bias=(k == 0), rng=rng)
             for k in range(hops + 1)])

        def bit(component: str) -> int:
            return int(bits.get(component, FP32_BITS))

        self.input_quantizer = quantizer_factory(bit("input"), "activation") \
            if quantize_input else IdentityQuantizer()
        self.adjacency_quantizer = quantizer_factory(bit("adjacency"), "adjacency")
        self.hop_out_quantizer = quantizer_factory(bit("hop_out"), "activation")
        self.weight_quantizers = ModuleList(
            [quantizer_factory(bit(f"weight_{k}"), "weight")
             for k in range(hops + 1)])
        self.output_quantizer = quantizer_factory(bit("output"), "activation")
        self._adjacency_cache = _QuantizedAdjacencyCache(self.adjacency_quantizer)

    @classmethod
    def components(cls, hops: int) -> tuple:
        return ("input", "adjacency", "hop_out",
                *(f"weight_{k}" for k in range(hops + 1)), "output")

    def forward(self, x: Tensor, graph: TAGGraphLike) -> Tensor:
        x = self.input_quantizer(x)
        views = hop_views(graph, self.hops)
        last = views[-1]
        num_final = last.num_dst if isinstance(last, SubgraphBlock) else None

        def final_rows(tensor: Tensor) -> Tensor:
            return tensor if num_final is None else tensor[:num_final]

        weight = self.weight_quantizers[0](self.linears[0].weight)
        output = final_rows(x).matmul(weight) + self.linears[0].bias
        propagated = x
        for hop, view in enumerate(views, start=1):
            adjacency = self._adjacency_cache(view.normalized_adjacency())
            if isinstance(view, SubgraphBlock):
                # Hop outputs are row-indexed by this hop's target side, not
                # by the layer's input block (the one forward_blocks set).
                set_active_block(self.hop_out_quantizer, view)
            propagated = self.hop_out_quantizer(spmm(adjacency, propagated))
            weight = self.weight_quantizers[hop](self.linears[hop].weight)
            output = output + final_rows(propagated).matmul(weight)
        if isinstance(last, SubgraphBlock):
            set_active_block(self.output_quantizer, last)
        return self.output_quantizer(output)

    def component_bits(self, prefix: str) -> ComponentBits:
        bits: ComponentBits = {}
        if self.quantize_input:
            bits[f"{prefix}.input"] = _bits_of(self.input_quantizer)
        bits[f"{prefix}.adjacency"] = _bits_of(self.adjacency_quantizer)
        bits[f"{prefix}.hop_out"] = _bits_of(self.hop_out_quantizer)
        for k, quantizer in enumerate(self.weight_quantizers):
            bits[f"{prefix}.weight_{k}"] = _bits_of(quantizer)
        bits[f"{prefix}.output"] = _bits_of(self.output_quantizer)
        return bits

    def bit_operations(self, graph: Graph, incoming_bits: int,
                       prefix: str) -> tuple[BitOpsCounter, int]:
        counter = BitOpsCounter()
        num_nodes = graph.num_nodes
        nnz = graph.adjacency(add_self_loops=True).nnz
        input_bits = _bits_of(self.input_quantizer) if self.quantize_input \
            else incoming_bits
        hop_bits = _bits_of(self.hop_out_quantizer)
        adjacency_bits = _bits_of(self.adjacency_quantizer)
        transform_ops = 2 * num_nodes * self.in_features * self.out_features
        counter.add(f"{prefix}.transform_hop0", transform_ops,
                    max(input_bits, _bits_of(self.weight_quantizers[0])))
        x_bits = input_bits
        for hop in range(1, self.hops + 1):
            counter.add(f"{prefix}.aggregate_hop{hop}",
                        2 * nnz * self.in_features, max(adjacency_bits, x_bits))
            counter.add(f"{prefix}.transform_hop{hop}", transform_ops,
                        max(hop_bits, _bits_of(self.weight_quantizers[hop])))
            x_bits = hop_bits
        return counter, _bits_of(self.output_quantizer)


def _layer_assignment(assignment: BitWidthAssignment, prefix: str) -> ComponentBits:
    """Extract the ``component -> bits`` mapping for one layer prefix."""
    marker = prefix + "."
    return {key[len(marker):]: value for key, value in assignment.items()
            if key.startswith(marker)}


class QuantNodeClassifier(Module):
    """Quantized counterpart of :class:`~repro.gnn.models.NodeClassifier`."""

    def __init__(self, convs: List[MessagePassing], dropout: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.convs = ModuleList(convs)
        self.activation = ReLU()
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, graph, x: Optional[Tensor] = None) -> Tensor:
        if isinstance(graph, BlockBatch):
            return forward_blocks(self, graph, x)
        if x is None:
            x = Tensor(graph.x)
        num_layers = len(self.convs)
        for index, conv in enumerate(self.convs):
            x = conv(x, graph)
            if index < num_layers - 1:
                x = self.activation(x)
                x = self.dropout(x)
        return x

    # ------------------------------------------------------------------ #
    def component_bits(self) -> ComponentBits:
        bits: ComponentBits = {}
        for index, conv in enumerate(self.convs):
            bits.update(conv.component_bits(f"conv{index}"))
        return bits

    def average_bits(self) -> float:
        return average_bits(self.component_bits().values())

    def bit_operations(self, graph: Graph) -> BitOpsCounter:
        counter = BitOpsCounter()
        incoming = FP32_BITS
        for index, conv in enumerate(self.convs):
            layer_counter, incoming = conv.bit_operations(graph, incoming, f"conv{index}")
            counter.extend(layer_counter)
        return counter

    # ------------------------------------------------------------------ #
    @classmethod
    def from_assignment(cls, layer_dims: List[tuple], conv_type: str,
                        assignment: BitWidthAssignment, dropout: float = 0.5,
                        quantizer_factory: QuantizerFactory = default_quantizer_factory,
                        hops: int = 3, heads: int = 1, head_merge: str = "concat",
                        rng: Optional[np.random.Generator] = None) -> "QuantNodeClassifier":
        """Build a quantized classifier from layer dimensions and a bit assignment.

        ``layer_dims`` is a list of ``(in_features, out_features)`` tuples and
        ``conv_type`` one of ``"gcn"`` / ``"gin"`` / ``"sage"`` / ``"gat"`` /
        ``"tag"`` / ``"transformer"``.  ``hops`` only applies to ``"tag"``;
        ``heads`` / ``head_merge`` only to the attention families — hidden
        layers merge by ``head_merge``, the output layer by ``mean``
        (:func:`~repro.gnn.models.head_merge_for_layer`).
        """
        conv_classes = {"gcn": QuantGCNConv, "gin": QuantGINConv,
                        "sage": QuantSAGEConv, "gat": QuantGATConv,
                        "tag": QuantTAGConv, "transformer": QuantTransformerConv}
        if conv_type not in conv_classes:
            raise KeyError(f"unknown conv type {conv_type!r}")
        conv_class = conv_classes[conv_type]
        convs: List[MessagePassing] = []
        for index, (fan_in, fan_out) in enumerate(layer_dims):
            layer_bits = _layer_assignment(assignment, f"conv{index}")
            if conv_type == "tag":
                extra = {"hops": hops}
            elif conv_type in ("gat", "transformer"):
                extra = {"heads": heads,
                         "head_merge": head_merge_for_layer(index, len(layer_dims),
                                                            heads, head_merge)}
            else:
                extra = {}
            convs.append(conv_class(fan_in, fan_out, layer_bits,
                                    quantize_input=(index == 0),
                                    quantizer_factory=quantizer_factory, rng=rng,
                                    **extra))
        return cls(convs, dropout=dropout, rng=rng)

    @classmethod
    def from_float(cls, model: NodeClassifier, assignment: BitWidthAssignment,
                   dropout: float = 0.5,
                   quantizer_factory: QuantizerFactory = default_quantizer_factory,
                   rng: Optional[np.random.Generator] = None) -> "QuantNodeClassifier":
        """Mirror a float :class:`NodeClassifier`, copying its layer dimensions."""
        layer_dims = []
        conv_type = None
        hops = 3
        tag_hops = set()
        layer_heads = set()
        hidden_merges = set()
        for conv in model.convs:
            layer_dims.append((conv.in_features, conv.out_features))
            for float_class, name in ((GCNConv, "gcn"), (GINConv, "gin"),
                                      (SAGEConv, "sage"), (GATConv, "gat"),
                                      (TAGConv, "tag"),
                                      (TransformerConv, "transformer")):
                if isinstance(conv, float_class):
                    conv_type = name
                    if name == "tag":
                        tag_hops.add(conv.hops)
        if conv_type is None:
            raise TypeError("from_float supports GCN / GIN / GraphSAGE / GAT / "
                            "TAG / Transformer convolutions")
        if len(tag_hops) > 1:
            # from_assignment builds every layer with one hops value; a mixed
            # stack would silently change the mirrored architecture.
            raise TypeError(f"from_float needs uniform TAG hops per stack, "
                            f"got {sorted(tag_hops)}")
        if tag_hops:
            hops = tag_hops.pop()
        if conv_type in ("gat", "transformer"):
            for index, conv in enumerate(model.convs):
                layer_heads.add(conv.heads)
                if index < len(model.convs) - 1:
                    hidden_merges.add(conv.head_merge)
        if len(layer_heads) > 1:
            raise TypeError(f"from_float needs a uniform head count per stack, "
                            f"got {sorted(layer_heads)}")
        if len(hidden_merges) > 1:
            raise TypeError(f"from_float needs one hidden-layer head merge, "
                            f"got {sorted(hidden_merges)}")
        heads = layer_heads.pop() if layer_heads else 1
        head_merge = hidden_merges.pop() if hidden_merges else "concat"
        if heads > 1:
            # from_assignment rebuilds each layer's merge through
            # head_merge_for_layer; a float stack that deviates from that
            # policy (e.g. a concat-merged output layer) would be silently
            # mirrored into a different architecture — refuse instead.
            for index, conv in enumerate(model.convs):
                expected = head_merge_for_layer(index, len(model.convs),
                                                heads, head_merge)
                if conv.head_merge != expected:
                    raise TypeError(
                        f"from_float cannot mirror layer {index}'s head merge "
                        f"{conv.head_merge!r}: multi-head stacks are rebuilt "
                        f"with {expected!r} there (hidden layers merge by the "
                        f"shared head_merge, the output layer by 'mean')")
        return cls.from_assignment(layer_dims, conv_type, assignment, dropout=dropout,
                                   quantizer_factory=quantizer_factory, hops=hops,
                                   heads=heads, head_merge=head_merge, rng=rng)


class QuantGraphClassifier(Module):
    """Quantized counterpart of :class:`~repro.gnn.models.GraphClassifier`."""

    def __init__(self, in_features: int, hidden_features: int, num_classes: int,
                 assignment: BitWidthAssignment, num_layers: int = 5,
                 pooling: str = "max", dropout: float = 0.5,
                 quantizer_factory: QuantizerFactory = default_quantizer_factory,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        convs: List[MessagePassing] = []
        for index in range(num_layers):
            fan_in = in_features if index == 0 else hidden_features
            layer_bits = _layer_assignment(assignment, f"conv{index}")
            convs.append(QuantGINConv(fan_in, hidden_features, layer_bits,
                                      quantize_input=(index == 0),
                                      quantizer_factory=quantizer_factory, rng=rng))
        self.convs = ModuleList(convs)
        self.pooling_name = pooling
        self._pool = get_pooling(pooling)
        head_bits = _layer_assignment(assignment, "head0")
        out_bits = _layer_assignment(assignment, "head1")
        self.head_hidden = QuantLinear(hidden_features, hidden_features,
                                       weight_bits=int(head_bits.get("weight", FP32_BITS)),
                                       output_bits=int(head_bits.get("output", FP32_BITS)),
                                       quantizer_factory=quantizer_factory, rng=rng)
        self.head_out = QuantLinear(hidden_features, num_classes,
                                    weight_bits=int(out_bits.get("weight", FP32_BITS)),
                                    output_bits=int(out_bits.get("output", FP32_BITS)),
                                    quantizer_factory=quantizer_factory, rng=rng)
        self.activation = ReLU()
        self.dropout = Dropout(dropout, rng=rng)
        self.hidden_features = hidden_features
        self.num_classes = num_classes

    def forward(self, batch: GraphBatch, x: Optional[Tensor] = None) -> Tensor:
        if x is None:
            x = Tensor(batch.x)
        for conv in self.convs:
            x = conv(x, batch)
            x = self.activation(x)
        pooled = self._pool(x, batch.batch, batch.num_graphs)
        hidden = self.activation(self.head_hidden(pooled))
        hidden = self.dropout(hidden)
        return self.head_out(hidden)

    def component_bits(self) -> ComponentBits:
        bits: ComponentBits = {}
        for index, conv in enumerate(self.convs):
            bits.update(conv.component_bits(f"conv{index}"))
        bits.update(self.head_hidden.component_bits("head0"))
        bits.update(self.head_out.component_bits("head1"))
        return bits

    def average_bits(self) -> float:
        return average_bits(self.component_bits().values())

    def bit_operations(self, batch: Graph) -> BitOpsCounter:
        counter = BitOpsCounter()
        incoming = FP32_BITS
        for index, conv in enumerate(self.convs):
            layer_counter, incoming = conv.bit_operations(batch, incoming, f"conv{index}")
            counter.extend(layer_counter)
        num_graphs = getattr(batch, "num_graphs", 1)
        head_counter, incoming = self.head_hidden.bit_operations(num_graphs, incoming, "head0")
        counter.extend(head_counter)
        out_counter, _ = self.head_out.bit_operations(num_graphs, incoming, "head1")
        counter.extend(out_counter)
        return counter


def uniform_assignment(component_names: List[str], bits: int) -> BitWidthAssignment:
    """Assign the same bit-width to every named component (uniform QAT baseline)."""
    return {name: int(bits) for name in component_names}


def gcn_component_names(num_layers: int) -> List[str]:
    """Component names of an ``num_layers``-layer quantized GCN (paper's example)."""
    names: List[str] = []
    for index in range(num_layers):
        components = QuantGCNConv.COMPONENTS if index == 0 else QuantGCNConv.COMPONENTS[1:]
        names.extend(f"conv{index}.{component}" for component in components)
    return names


def gin_component_names(num_layers: int, with_head: bool = True) -> List[str]:
    """Component names of a quantized GIN graph classifier."""
    names: List[str] = []
    for index in range(num_layers):
        components = QuantGINConv.COMPONENTS if index == 0 else QuantGINConv.COMPONENTS[1:]
        names.extend(f"conv{index}.{component}" for component in components)
    if with_head:
        names.extend(["head0.weight", "head0.output", "head1.weight", "head1.output"])
    return names


def sage_component_names(num_layers: int) -> List[str]:
    """Component names of a quantized GraphSAGE node classifier."""
    names: List[str] = []
    for index in range(num_layers):
        components = QuantSAGEConv.COMPONENTS if index == 0 else QuantSAGEConv.COMPONENTS[1:]
        names.extend(f"conv{index}.{component}" for component in components)
    return names


def gat_component_names(num_layers: int) -> List[str]:
    """Component names of a quantized GAT node classifier."""
    names: List[str] = []
    for index in range(num_layers):
        components = QuantGATConv.COMPONENTS if index == 0 else QuantGATConv.COMPONENTS[1:]
        names.extend(f"conv{index}.{component}" for component in components)
    return names


def transformer_component_names(num_layers: int) -> List[str]:
    """Component names of a quantized Transformer node classifier."""
    names: List[str] = []
    for index in range(num_layers):
        components = QuantTransformerConv.COMPONENTS if index == 0 \
            else QuantTransformerConv.COMPONENTS[1:]
        names.extend(f"conv{index}.{component}" for component in components)
    return names


def tag_component_names(num_layers: int, hops: int = 3) -> List[str]:
    """Component names of a quantized TAG node classifier."""
    names: List[str] = []
    for index in range(num_layers):
        components = QuantTAGConv.components(hops)
        if index != 0:
            components = components[1:]
        names.extend(f"conv{index}.{component}" for component in components)
    return names
