"""Saving and loading experiment artefacts (bit-width assignments, result tables).

MixQ-GNN's output is a *bit-width assignment* — a small dictionary mapping
component names to integers — plus the summary metrics of the quantized
model.  Persisting these as JSON lets a search run on one machine be
finalized and deployed on another, and lets the benchmark harness archive
its measured tables next to EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.core.mixq import MixQResult
from repro.core.selection import BitWidthSearchResult
from repro.experiments.common import MethodRow
from repro.quant.qmodules import BitWidthAssignment

PathLike = Union[str, Path]


def save_assignment(assignment: BitWidthAssignment, path: PathLike,
                    metadata: Dict[str, object] | None = None) -> None:
    """Write a bit-width assignment (and optional metadata) to a JSON file."""
    payload = {"assignment": {str(k): int(v) for k, v in assignment.items()},
               "metadata": metadata or {}}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_assignment(path: PathLike) -> BitWidthAssignment:
    """Read a bit-width assignment produced by :func:`save_assignment`."""
    payload = json.loads(Path(path).read_text())
    if "assignment" not in payload:
        raise ValueError(f"{path} does not contain a bit-width assignment")
    return {str(key): int(value) for key, value in payload["assignment"].items()}


def search_result_to_dict(result: BitWidthSearchResult) -> Dict[str, object]:
    """A JSON-serialisable view of a :class:`BitWidthSearchResult`."""
    return {
        "assignment": {k: int(v) for k, v in result.assignment.items()},
        "average_bits": result.average_bits,
        "lambda": result.lambda_value,
        "loss_history": list(result.loss_history),
        "penalty_history": list(result.penalty_history),
        "expected_bits_history": list(result.expected_bits_history),
    }


def mixq_result_to_dict(result: MixQResult) -> Dict[str, object]:
    """A JSON-serialisable view of a :class:`MixQResult`."""
    payload = {
        "accuracy": result.accuracy,
        "average_bits": result.average_bits,
        "giga_bit_operations": result.giga_bit_operations,
        "assignment": {k: int(v) for k, v in result.assignment.items()},
    }
    if result.search is not None:
        payload["search"] = search_result_to_dict(result.search)
    return payload


def save_mixq_result(result: MixQResult, path: PathLike) -> None:
    """Write a full MixQ run summary to JSON."""
    Path(path).write_text(json.dumps(mixq_result_to_dict(result), indent=2))


def rows_to_records(rows: Sequence[MethodRow]) -> List[Dict[str, object]]:
    """Convert table rows to plain dictionaries (one per method)."""
    return [row.as_dict() for row in rows]


def save_table(rows: Sequence[MethodRow], path: PathLike, title: str = "") -> None:
    """Persist a result table (as printed by the benchmarks) to JSON."""
    payload = {"title": title, "rows": rows_to_records(rows)}
    Path(path).write_text(json.dumps(payload, indent=2))


def load_table(path: PathLike) -> List[Dict[str, object]]:
    """Load a table written by :func:`save_table`."""
    payload = json.loads(Path(path).read_text())
    return list(payload.get("rows", []))
