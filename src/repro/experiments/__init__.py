"""Experiment runners: one function per table / figure of the paper.

Every runner returns plain Python data (lists of row dictionaries or point
lists) so it can be driven both by the ``benchmarks/`` harness (which prints
the paper-style tables and asserts the qualitative shape) and by the
``examples/`` scripts.  ``ExperimentScale`` controls dataset sizes and epoch
counts so the full suite finishes on a CPU-only machine.
"""

from repro.experiments.config import ExperimentScale, QUICK, STANDARD
from repro.experiments.common import MethodRow, format_table, run_seeds
from repro.experiments import (
    ablation,
    figures,
    graph_tables,
    node_tables,
    reference,
    table_static,
)

__all__ = [
    "ExperimentScale",
    "QUICK",
    "STANDARD",
    "MethodRow",
    "format_table",
    "run_seeds",
    "figures",
    "node_tables",
    "graph_tables",
    "ablation",
    "table_static",
    "reference",
]
