"""Experiment scale presets.

The paper's experiments run for hundreds of epochs on GPU-sized datasets;
the reproduction exposes the same experiments at two scales:

* ``QUICK`` — used by the pytest-benchmark harness and CI: tiny graphs,
  few epochs, 1-2 seeds.  Finishes in minutes and still exhibits the
  qualitative shape (ordering of methods, compression ratios).
* ``STANDARD`` — larger graphs and more epochs/seeds for a closer match;
  used when running the benchmark scripts by hand with ``REPRO_SCALE=standard``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by all experiment runners."""

    name: str
    citation_scale: float
    large_scale: float
    num_graphs: int
    num_seeds: int
    search_epochs: int
    train_epochs: int
    graph_search_epochs: int
    graph_train_epochs: int
    num_folds: int
    hidden_features: int


QUICK = ExperimentScale(
    name="quick",
    citation_scale=0.12,
    large_scale=0.5,
    num_graphs=60,
    num_seeds=2,
    search_epochs=25,
    train_epochs=50,
    graph_search_epochs=4,
    graph_train_epochs=8,
    num_folds=3,
    hidden_features=16,
)

STANDARD = ExperimentScale(
    name="standard",
    citation_scale=0.3,
    large_scale=1.0,
    num_graphs=150,
    num_seeds=5,
    search_epochs=60,
    train_epochs=150,
    graph_search_epochs=10,
    graph_train_epochs=25,
    num_folds=10,
    hidden_features=32,
)

_SCALES = {"quick": QUICK, "standard": STANDARD}


def current_scale() -> ExperimentScale:
    """Scale selected through the ``REPRO_SCALE`` environment variable."""
    return _SCALES.get(os.environ.get("REPRO_SCALE", "quick").lower(), QUICK)
