"""Reference numbers from the paper, used for paper-vs-measured reporting.

These are the headline values of the tables the reproduction targets.  The
benchmarks print them next to the measured values (see EXPERIMENTS.md); they
are *not* used as assertions because the synthetic dataset stand-ins shift
absolute accuracies — only the qualitative shape is asserted.
"""

from __future__ import annotations

from typing import Dict

#: Table 3 (GCN node classification): accuracy %, average bits, GBitOPs.
PAPER_TABLE3: Dict[str, Dict[str, Dict[str, float]]] = {
    "cora": {
        "FP32": {"accuracy": 81.5, "bits": 32, "gbitops": 16.11},
        "DQ INT8": {"accuracy": 81.7, "bits": 8, "gbitops": 4.03},
        "DQ INT4": {"accuracy": 78.3, "bits": 4, "gbitops": 2.01},
        "A2Q": {"accuracy": 80.9, "bits": 1.70, "gbitops": 8.94},
        "MixQ(λ=-ε)": {"accuracy": 81.6, "bits": 7.69, "gbitops": 3.95},
        "MixQ(λ=0.1)": {"accuracy": 77.7, "bits": 5.82, "gbitops": 3.35},
        "MixQ(λ=1)": {"accuracy": 68.7, "bits": 3.84, "gbitops": 1.68},
    },
    "citeseer": {
        "FP32": {"accuracy": 71.1, "bits": 32, "gbitops": 50.68},
        "DQ INT8": {"accuracy": 71.0, "bits": 8, "gbitops": 12.67},
        "DQ INT4": {"accuracy": 66.9, "bits": 4, "gbitops": 6.33},
        "A2Q": {"accuracy": 70.6, "bits": 1.87, "gbitops": 8.96},
        "MixQ(λ=-ε)": {"accuracy": 69.0, "bits": 6.84, "gbitops": 12.44},
        "MixQ(λ=0.1)": {"accuracy": 66.5, "bits": 4.49, "gbitops": 5.18},
        "MixQ(λ=1)": {"accuracy": 60.9, "bits": 3.44, "gbitops": 4.23},
    },
    "pubmed": {
        "FP32": {"accuracy": 78.9, "bits": 32, "gbitops": 41.7},
        "DQ INT4": {"accuracy": 62.5, "bits": 4, "gbitops": 5.21},
        "A2Q": {"accuracy": 77.5, "bits": 1.90, "gbitops": 8.94},
        "MixQ(λ=-ε)": {"accuracy": 78.3, "bits": 7.36, "gbitops": 10.34},
        "MixQ(λ=0.1)": {"accuracy": 77.3, "bits": 5.49, "gbitops": 6.89},
        "MixQ(λ=1)": {"accuracy": 71.0, "bits": 4.09, "gbitops": 4.85},
    },
    "ogb-arxiv": {
        "FP32": {"accuracy": 71.7, "bits": 32, "gbitops": 692.87},
        "DQ INT4": {"accuracy": 65.4, "bits": 4, "gbitops": 86.96},
        "A2Q": {"accuracy": 71.1, "bits": 2.65, "gbitops": 141.93},
        "MixQ(λ=-ε)": {"accuracy": 70.6, "bits": 8.0, "gbitops": 167.50},
        "MixQ(λ=0.1)": {"accuracy": 70.0, "bits": 7.08, "gbitops": 167.50},
        "MixQ(λ=1)": {"accuracy": 69.3, "bits": 7.08, "gbitops": 167.50},
    },
}

#: Table 4 (Cora, native MixQ vs MixQ + DQ).
PAPER_TABLE4: Dict[str, Dict[str, float]] = {
    "MixQ(λ=-ε)": {"accuracy": 81.6, "bits": 7.69, "gbitops": 3.95},
    "MixQ(λ=-ε) + DQ": {"accuracy": 81.8, "bits": 7.69, "gbitops": 4.01},
    "MixQ(λ=0.1)": {"accuracy": 77.7, "bits": 5.82, "gbitops": 3.35},
    "MixQ(λ=0.1) + DQ": {"accuracy": 79.9, "bits": 6.02, "gbitops": 3.35},
    "MixQ(λ=1)": {"accuracy": 68.7, "bits": 3.84, "gbitops": 1.68},
    "MixQ(λ=1) + DQ": {"accuracy": 72.3, "bits": 3.69, "gbitops": 1.68},
}

#: Table 5 (A²Q vs MixQ + DQ).
PAPER_TABLE5: Dict[str, Dict[str, Dict[str, float]]] = {
    "cora": {"A2Q": {"accuracy": 80.9, "gbitops": 8.94},
             "MixQ + DQ": {"accuracy": 81.8, "gbitops": 4.01}},
    "citeseer": {"A2Q": {"accuracy": 70.6, "gbitops": 8.96},
                 "MixQ + DQ": {"accuracy": 66.2, "gbitops": 6.01}},
    "pubmed": {"A2Q": {"accuracy": 77.5, "gbitops": 8.94},
               "MixQ + DQ": {"accuracy": 77.6, "gbitops": 6.88}},
}

#: Table 6 (GraphSAGE).
PAPER_TABLE6: Dict[str, Dict[str, Dict[str, float]]] = {
    "cora": {"FP32": {"accuracy": 76.7, "bits": 32, "gbitops": 7.8},
             "MixQ(λ=0.1)": {"accuracy": 78.1, "bits": 6.9, "gbitops": 1.94},
             "MixQ(λ=1)": {"accuracy": 75.4, "bits": 4.9, "gbitops": 0.9}},
    "citeseer": {"FP32": {"accuracy": 65.6, "bits": 32, "gbitops": 19.5},
                 "MixQ(λ=0.1)": {"accuracy": 65.8, "bits": 6.3, "gbitops": 4.2},
                 "MixQ(λ=1)": {"accuracy": 66.6, "bits": 4.7, "gbitops": 2.1}},
    "pubmed": {"FP32": {"accuracy": 77.9, "bits": 32, "gbitops": 5.6},
               "MixQ(λ=0.1)": {"accuracy": 77.8, "bits": 6.9, "gbitops": 1.2},
               "MixQ(λ=1)": {"accuracy": 77.9, "bits": 5.4, "gbitops": 0.7}},
}

#: Table 7 (large-scale GraphSAGE; metric is accuracy except ROC-AUC for proteins).
PAPER_TABLE7: Dict[str, Dict[str, Dict[str, float]]] = {
    "reddit": {"FP32": {"metric": 86.72, "bits": 32, "gbitops": 1103},
               "MixQ(λ=-ε)": {"metric": 85.50, "bits": 6.91, "gbitops": 129},
               "MixQ(λ=0.1)": {"metric": 86.01, "bits": 5.70, "gbitops": 111},
               "MixQ(λ=1)": {"metric": 84.86, "bits": 5.21, "gbitops": 80}},
    "ogb-proteins": {"FP32": {"metric": 0.63, "bits": 32, "gbitops": 3369},
                     "MixQ(λ=-ε)": {"metric": 0.61, "bits": 6.1, "gbitops": 1299},
                     "MixQ(λ=0.1)": {"metric": 0.61, "bits": 2.8, "gbitops": 643},
                     "MixQ(λ=1)": {"metric": 0.59, "bits": 2.4, "gbitops": 391}},
    "ogb-products": {"FP32": {"metric": 66.60, "bits": 32, "gbitops": 1862},
                     "MixQ(λ=-ε)": {"metric": 66.36, "bits": 7.5, "gbitops": 425},
                     "MixQ(λ=0.1)": {"metric": 63.43, "bits": 7.2, "gbitops": 403},
                     "MixQ(λ=1)": {"metric": 60.75, "bits": 5.0, "gbitops": 305}},
    "igb": {"FP32": {"metric": 71.47, "bits": 32, "gbitops": 14},
            "MixQ(λ=-ε)": {"metric": 67.25, "bits": 6.91, "gbitops": 1.5},
            "MixQ(λ=0.1)": {"metric": 67.59, "bits": 6.18, "gbitops": 1.4},
            "MixQ(λ=1)": {"metric": 66.79, "bits": 5.45, "gbitops": 1.2}},
}

#: Table 8 (GIN graph classification, 10-fold CV).
PAPER_TABLE8: Dict[str, Dict[str, Dict[str, float]]] = {
    "imdb-b": {"FP32": {"accuracy": 75.2, "gbitops": 5.47},
               "DQ INT4": {"accuracy": 68.6, "gbitops": 0.68},
               "A2Q": {"accuracy": 74.6, "gbitops": 0.87},
               "MixQ(λ*)": {"accuracy": 74.0, "gbitops": 1.27},
               "MixQ(λ=1)": {"accuracy": 69.6, "gbitops": 1.06}},
    "proteins": {"FP32": {"accuracy": 70.5, "gbitops": 7.62},
                 "DQ INT4": {"accuracy": 73.1, "gbitops": 0.95},
                 "A2Q": {"accuracy": 74.0, "gbitops": 1.05},
                 "MixQ(λ*)": {"accuracy": 73.1, "gbitops": 1.35},
                 "MixQ(λ=1)": {"accuracy": 72.8, "gbitops": 1.25}},
    "dd": {"FP32": {"accuracy": 73.8, "gbitops": 55.41},
           "MixQ(λ*)": {"accuracy": 73.7, "gbitops": 8.92},
           "MixQ(λ=1)": {"accuracy": 69.6, "gbitops": 9.02}},
    "reddit-b": {"FP32": {"accuracy": 89.54, "gbitops": 75.68},
                 "MixQ(λ*)": {"accuracy": 90.7, "gbitops": 33.63},
                 "MixQ(λ=1)": {"accuracy": 89.3, "gbitops": 24.34}},
    "reddit-m": {"FP32": {"accuracy": 52.2, "gbitops": 83.70},
                 "MixQ(λ*)": {"accuracy": 53.7, "gbitops": 35.62},
                 "MixQ(λ=1)": {"accuracy": 51.7, "gbitops": 25.46}},
}

#: Table 9 (CSL).
PAPER_TABLE9: Dict[str, Dict[str, float]] = {
    "FP32": {"accuracy": 99.4, "bits": 32},
    "QAT - INT2": {"accuracy": 24.4, "bits": 2},
    "QAT - INT4": {"accuracy": 94.4, "bits": 4},
    "MixQ(λ=-ε)": {"accuracy": 95.0, "bits": 3.9},
    "MixQ(λ=0)": {"accuracy": 94.1, "bits": 3.5},
}

#: Table 10 (random assignment ablation on Cora/CiteSeer/PubMed).
PAPER_TABLE10: Dict[str, Dict[str, Dict[str, float]]] = {
    "cora": {"Random": {"accuracy": 36.9, "bits": 4.56},
             "Random+INT8": {"accuracy": 57.4, "bits": 4.97},
             "MixQ(λ=1)": {"accuracy": 68.7, "bits": 3.84}},
    "citeseer": {"Random": {"accuracy": 46.1, "bits": 4.86},
                 "Random+INT8": {"accuracy": 54.2, "bits": 4.96},
                 "MixQ(λ=1)": {"accuracy": 60.9, "bits": 3.44}},
    "pubmed": {"Random": {"accuracy": 45.5, "bits": 4.60},
               "Random+INT8": {"accuracy": 50.8, "bits": 4.79},
               "MixQ(λ=1)": {"accuracy": 71.0, "bits": 4.09}},
}

#: Headline compression claims (Sections 5.3 / 5.4).
PAPER_HEADLINES = {
    "node_classification_bitops_reduction": 5.5,
    "graph_classification_bitops_reduction": 5.1,
    "figure1_spearman_correlation": 0.64,
    "figure8_pearson_correlations": {"amd": 0.59, "apple_m1": 0.95, "intel_xeon": 0.70},
}
