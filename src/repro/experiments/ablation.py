"""Ablation experiments: Table 10 and the design-choice ablations from DESIGN.md."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.build import build_relaxed_node_classifier, layer_dimensions
from repro.core.search_space import random_assignment
from repro.core.selection import search_node_bitwidths
from repro.experiments.common import MethodRow, merge_seed_rows, run_mixq
from repro.experiments.config import ExperimentScale, QUICK
from repro.graphs.datasets import load_node_dataset
from repro.quant.bitops import average_bits
from repro.quant.qmodules import (
    QuantNodeClassifier,
    default_quantizer_factory,
    gcn_component_names,
)
from repro.quant.quantizer import AffineQuantizer, IdentityQuantizer
from repro.training.trainer import train_node_classifier


def _train_assignment(graph, assignment, hidden: int, epochs: int, seed: int,
                      quantizer_factory=default_quantizer_factory) -> MethodRow:
    layer_dims = layer_dimensions(graph.num_features, hidden, graph.num_classes, 2)
    model = QuantNodeClassifier.from_assignment(
        layer_dims, "gcn", assignment, quantizer_factory=quantizer_factory,
        rng=np.random.default_rng(seed))
    result = train_node_classifier(model, graph, epochs=epochs)
    counter = model.bit_operations(graph)
    return MethodRow("assignment", [result.test_accuracy],
                     bits=average_bits(assignment.values()),
                     giga_bit_operations=counter.giga_bit_operations())


def table10_random_vs_mixq(datasets: Sequence[str] = ("cora", "citeseer", "pubmed"),
                           scale: ExperimentScale = QUICK,
                           bit_choices: Sequence[int] = (2, 4, 8),
                           num_random: int = 3) -> Dict[str, List[MethodRow]]:
    """Table 10: random bit-width assignment vs Random+INT8 vs MixQ(λ=1)."""
    component_names = gcn_component_names(2)
    output_component = "conv1.aggregate_out"
    results: Dict[str, List[MethodRow]] = {}
    for dataset in datasets:
        random_rows: List[MethodRow] = []
        random_int8_rows: List[MethodRow] = []
        mixq_rows: List[MethodRow] = []
        for seed in range(scale.num_seeds):
            graph = load_node_dataset(dataset, scale=scale.citation_scale, seed=seed)
            rng = np.random.default_rng(seed)
            for sample in range(num_random):
                plain = random_assignment(component_names, bit_choices, rng)
                row = _train_assignment(graph, plain, scale.hidden_features,
                                        scale.train_epochs, seed * 100 + sample)
                row.method = "Random"
                random_rows.append(row)
                pinned = random_assignment(component_names, bit_choices, rng,
                                           output_component=output_component,
                                           output_bits=8)
                row = _train_assignment(graph, pinned, scale.hidden_features,
                                        scale.train_epochs, seed * 100 + sample + 50)
                row.method = "Random+INT8"
                random_int8_rows.append(row)
            mixq_rows.append(run_mixq(graph, 1.0, bit_choices, "gcn",
                                      scale.hidden_features,
                                      search_epochs=scale.search_epochs,
                                      train_epochs=scale.train_epochs, seed=seed,
                                      method_name="MixQ(λ=1)"))
        results[dataset] = [merge_seed_rows(random_rows),
                            merge_seed_rows(random_int8_rows),
                            merge_seed_rows(mixq_rows)]
    return results


# --------------------------------------------------------------------------- #
# design-choice ablations (DESIGN.md)
# --------------------------------------------------------------------------- #
def ablation_quantizer_ranges(dataset: str = "cora", scale: ExperimentScale = QUICK,
                              bits: int = 4) -> List[MethodRow]:
    """EMA min/max vs percentile observer ranges for a uniform INT4 GCN."""
    graph = load_node_dataset(dataset, scale=scale.citation_scale, seed=0)
    component_names = gcn_component_names(2)
    assignment = {name: bits for name in component_names}

    def ema_factory(bits_: int, kind: str):
        if bits_ >= 32:
            return IdentityQuantizer()
        return AffineQuantizer(bits=bits_, symmetric=(kind != "activation"),
                               observer="ema")

    def percentile_factory(bits_: int, kind: str):
        if bits_ >= 32:
            return IdentityQuantizer()
        return AffineQuantizer(bits=bits_, symmetric=(kind != "activation"),
                               observer="percentile")

    rows = []
    for name, factory in (("EMA ranges", ema_factory),
                          ("Percentile ranges", percentile_factory)):
        row = _train_assignment(graph, assignment, scale.hidden_features,
                                scale.train_epochs, seed=0, quantizer_factory=factory)
        row.method = name
        rows.append(row)
    return rows


def ablation_output_quantizer(dataset: str = "cora", scale: ExperimentScale = QUICK,
                              bits: int = 4) -> List[MethodRow]:
    """Quantizing vs skipping the aggregation output between stacked layers.

    The paper recommends S_y = 1, Z_y = 0 between message-passing layers (the
    next layer re-quantizes its input anyway); this ablation compares both.
    """
    graph = load_node_dataset(dataset, scale=scale.citation_scale, seed=0)
    component_names = gcn_component_names(2)
    with_output = {name: bits for name in component_names}
    without_output = dict(with_output)
    without_output["conv0.aggregate_out"] = 32
    rows = []
    for name, assignment in (("Quantized layer output", with_output),
                             ("FP32 layer output (S_y=1)", without_output)):
        row = _train_assignment(graph, assignment, scale.hidden_features,
                                scale.train_epochs, seed=0)
        row.method = name
        rows.append(row)
    return rows


def ablation_penalty_routing(dataset: str = "cora", scale: ExperimentScale = QUICK,
                             bit_choices: Sequence[int] = (2, 4, 8),
                             lambda_value: float = 1.0) -> List[MethodRow]:
    """Joint objective vs Algorithm-1-literal decoupled gradient routing."""
    graph = load_node_dataset(dataset, scale=scale.citation_scale, seed=0)
    layer_dims = layer_dimensions(graph.num_features, scale.hidden_features,
                                  graph.num_classes, 2)
    rows = []
    for name, decoupled in (("Joint L + λC", False), ("Decoupled (Alg. 1)", True)):
        relaxed = build_relaxed_node_classifier(
            "gcn", layer_dims, bit_choices, rng=np.random.default_rng(0))
        search = search_node_bitwidths(relaxed, graph, lambda_value,
                                       epochs=scale.search_epochs,
                                       penalty_only_alphas=decoupled)
        row = _train_assignment(graph, search.assignment, scale.hidden_features,
                                scale.train_epochs, seed=0)
        row.method = name
        rows.append(row)
    return rows
