"""Graph-classification experiments: Tables 8 and 9 of the paper."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.mixq import MixQGraphClassifier
from repro.experiments.common import MethodRow
from repro.experiments.config import ExperimentScale, QUICK
from repro.gnn.models import GraphClassifier
from repro.graphs.batch import GraphBatch
from repro.graphs.datasets import load_csl, load_tu_dataset
from repro.graphs.datasets.tu import dataset_labels
from repro.graphs.graph import Graph
from repro.graphs.splits import stratified_k_fold_indices
from repro.quant.bitops import FP32_BITS
from repro.quant.qmodules import (
    QuantGraphClassifier,
    gin_component_names,
    uniform_assignment,
)
from repro.training.trainer import train_graph_classifier

#: Bit-width search spaces per dataset (paper Table 8 caption).
TABLE8_BIT_CHOICES: Dict[str, Sequence[int]] = {
    "imdb-b": (4, 8),
    "proteins": (4, 8),
    "dd": (4, 8),
    "reddit-b": (8, 16),
    "reddit-m": (8, 16),
}


def _fp32_fold_row(graphs: List[Graph], train_idx: np.ndarray, test_idx: np.ndarray,
                   hidden: int, num_layers: int, scale: ExperimentScale,
                   seed: int, lr: float = 0.01, batch_size: int = 32,
                   dropout: float = 0.5) -> float:
    rng = np.random.default_rng(seed)
    num_classes = int(dataset_labels(graphs).max()) + 1
    model = GraphClassifier(graphs[0].num_features, hidden, num_classes,
                            num_layers=num_layers, batch_norm=False, dropout=dropout,
                            rng=rng)
    train_graphs = [graphs[i] for i in train_idx]
    test_graphs = [graphs[i] for i in test_idx]
    result = train_graph_classifier(model, train_graphs, test_graphs,
                                    epochs=scale.graph_train_epochs, lr=lr,
                                    batch_size=batch_size, rng=rng)
    return result.test_accuracy


def _mixq_fold_result(graphs: List[Graph], train_idx: np.ndarray, test_idx: np.ndarray,
                      hidden: int, num_layers: int, bit_choices: Sequence[int],
                      lambda_value: float, scale: ExperimentScale, seed: int,
                      lr: float = 0.01, batch_size: int = 32, dropout: float = 0.5):
    num_classes = int(dataset_labels(graphs).max()) + 1
    mixq = MixQGraphClassifier(graphs[0].num_features, hidden, num_classes,
                               num_layers=num_layers, bit_choices=bit_choices,
                               lambda_value=lambda_value, dropout=dropout, seed=seed)
    train_graphs = [graphs[i] for i in train_idx]
    test_graphs = [graphs[i] for i in test_idx]
    return mixq.fit(train_graphs, test_graphs,
                    search_epochs=scale.graph_search_epochs,
                    train_epochs=scale.graph_train_epochs, lr=lr,
                    batch_size=batch_size)


def _uniform_qat_fold(graphs: List[Graph], train_idx: np.ndarray, test_idx: np.ndarray,
                      hidden: int, num_layers: int, bits: int,
                      scale: ExperimentScale, seed: int, lr: float = 0.01,
                      batch_size: int = 32, dropout: float = 0.5) -> float:
    rng = np.random.default_rng(seed)
    num_classes = int(dataset_labels(graphs).max()) + 1
    assignment = uniform_assignment(gin_component_names(num_layers), bits)
    model = QuantGraphClassifier(graphs[0].num_features, hidden, num_classes, assignment,
                                 num_layers=num_layers, dropout=dropout, rng=rng)
    train_graphs = [graphs[i] for i in train_idx]
    test_graphs = [graphs[i] for i in test_idx]
    result = train_graph_classifier(model, train_graphs, test_graphs,
                                    epochs=scale.graph_train_epochs, lr=lr,
                                    batch_size=batch_size, rng=rng)
    return result.test_accuracy


def table8_graph_classification(datasets: Sequence[str] = ("imdb-b", "proteins"),
                                scale: ExperimentScale = QUICK,
                                num_layers: int = 5,
                                lambdas: Sequence[float] = (-1e-8, 1.0)
                                ) -> Dict[str, List[MethodRow]]:
    """Table 8: k-fold cross-validated GIN graph classification.

    Per fold a fresh relaxed architecture is searched (as in the paper); the
    FP32 and uniform-QAT baselines run on the identical folds.
    """
    results: Dict[str, List[MethodRow]] = {}
    for dataset in datasets:
        bit_choices = TABLE8_BIT_CHOICES.get(dataset, (4, 8))
        graphs = load_tu_dataset(dataset, num_graphs=scale.num_graphs, seed=0)
        labels = dataset_labels(graphs)
        folds = stratified_k_fold_indices(labels, scale.num_folds,
                                          rng=np.random.default_rng(0))
        fp32_row = MethodRow("FP32", bits=float(FP32_BITS))
        qat_row = MethodRow(f"DQ INT{min(bit_choices)}", bits=float(min(bit_choices)))
        mixq_rows = {lam: MethodRow(f"MixQ(λ={lam:g})") for lam in lambdas}
        fp32_gbitops: List[float] = []
        for fold_index, (train_idx, test_idx) in enumerate(folds):
            fp32_row.accuracies.append(_fp32_fold_row(
                graphs, train_idx, test_idx, scale.hidden_features, num_layers,
                scale, seed=fold_index))
            qat_row.accuracies.append(_uniform_qat_fold(
                graphs, train_idx, test_idx, scale.hidden_features, num_layers,
                min(bit_choices), scale, seed=fold_index))
            for lam in lambdas:
                fold_result = _mixq_fold_result(
                    graphs, train_idx, test_idx, scale.hidden_features, num_layers,
                    bit_choices, lam, scale, seed=fold_index)
                mixq_rows[lam].accuracies.append(fold_result.accuracy)
                mixq_rows[lam].bits = fold_result.average_bits
                mixq_rows[lam].giga_bit_operations = fold_result.giga_bit_operations
        # FP32 BitOPs reference: the float model on one reference batch.
        num_classes = int(labels.max()) + 1
        reference_model = GraphClassifier(graphs[0].num_features, scale.hidden_features,
                                          num_classes, num_layers=num_layers,
                                          batch_norm=False)
        reference_batch = GraphBatch(graphs[:min(len(graphs), 32)])
        fp32_row.giga_bit_operations = (
            reference_model.operation_count(reference_batch) * FP32_BITS / 1e9)
        qat_row.giga_bit_operations = fp32_row.giga_bit_operations \
            * min(bit_choices) / FP32_BITS
        results[dataset] = [fp32_row, qat_row,
                            *(mixq_rows[lam] for lam in lambdas)]
    return results


def table9_csl(scale: ExperimentScale = QUICK, num_layers: int = 4,
               positional_encoding_dim: int = 20,
               copies_per_class: int = 6) -> List[MethodRow]:
    """Table 9: CSL graph classification — FP32, QAT-INT2, QAT-INT4 and MixQ.

    The architecture is a GCN-style stack in the paper; here the GIN-based
    graph classifier is used with the CSL Laplacian positional encodings,
    preserving the phenomenon under study (INT2 collapses, INT4 recovers,
    MixQ sits in between with fewer bits).
    """
    graphs = load_csl(copies_per_class=copies_per_class,
                      positional_encoding_dim=positional_encoding_dim, seed=0)
    labels = dataset_labels(graphs)
    num_classes = int(labels.max()) + 1
    folds = stratified_k_fold_indices(labels, max(scale.num_folds, 2),
                                      rng=np.random.default_rng(0))

    # CSL's class signal lives in small differences of the positional
    # encodings, so the folds train without dropout, with small batches and a
    # slightly larger learning rate (the paper trains the real dataset for
    # many more epochs than the CPU budget here allows).
    fold_kwargs = {"lr": 0.02, "batch_size": 16, "dropout": 0.0}
    rows = {
        "FP32": MethodRow("FP32", bits=float(FP32_BITS)),
        "QAT - INT2": MethodRow("QAT - INT2", bits=2.0),
        "QAT - INT4": MethodRow("QAT - INT4", bits=4.0),
        "MixQ(λ=-ε)": MethodRow("MixQ(λ=-ε)"),
    }
    for fold_index, (train_idx, test_idx) in enumerate(folds):
        rows["FP32"].accuracies.append(_fp32_fold_row(
            graphs, train_idx, test_idx, scale.hidden_features, num_layers, scale,
            seed=fold_index, **fold_kwargs))
        for bits, name in ((2, "QAT - INT2"), (4, "QAT - INT4")):
            rows[name].accuracies.append(_uniform_qat_fold(
                graphs, train_idx, test_idx, scale.hidden_features, num_layers, bits,
                scale, seed=fold_index, **fold_kwargs))
        mixq_result = _mixq_fold_result(
            graphs, train_idx, test_idx, scale.hidden_features, num_layers,
            (2, 4), -1e-8, scale, seed=fold_index, **fold_kwargs)
        rows["MixQ(λ=-ε)"].accuracies.append(mixq_result.accuracy)
        rows["MixQ(λ=-ε)"].bits = mixq_result.average_bits
        rows["MixQ(λ=-ε)"].giga_bit_operations = mixq_result.giga_bit_operations
    return list(rows.values())
