"""Node-classification experiments: Tables 3, 4, 5, 6 and 7 of the paper."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    MethodRow,
    merge_seed_rows,
    run_a2q,
    run_fp32,
    run_mixq,
    run_uniform_qat,
)
from repro.experiments.config import ExperimentScale, QUICK
from repro.graphs.datasets import load_large_scale, load_node_dataset
from repro.graphs.graph import Graph

EPSILON_LAMBDA = -1e-8


def _load_citation(name: str, scale: ExperimentScale, seed: int) -> Graph:
    return load_node_dataset(name, scale=scale.citation_scale, seed=seed)


def _seeded(rows_per_seed: List[List[MethodRow]]) -> List[MethodRow]:
    """Merge per-seed row lists (all seeds produce the same method order)."""
    merged = []
    for per_method in zip(*rows_per_seed):
        merged.append(merge_seed_rows(list(per_method)))
    return merged


def table3_node_classification(datasets: Sequence[str] = ("cora", "citeseer", "pubmed"),
                               scale: ExperimentScale = QUICK,
                               bit_choices: Sequence[int] = (2, 4, 8),
                               lambdas: Sequence[float] = (EPSILON_LAMBDA, 0.1, 1.0),
                               minibatch: bool = False,
                               fanout: Optional[int] = 10,
                               batch_size: int = 256
                               ) -> Dict[str, List[MethodRow]]:
    """Table 3: GCN node classification — FP32, DQ, A²Q and MixQ(λ) per dataset.

    ``minibatch=True`` trains FP32 / DQ / MixQ through the neighbor-sampling
    engine with the given per-layer ``fanout``; A²Q keeps its full-batch loop
    because its per-node quantization state is tied to the full graph.
    """
    sampled = {"minibatch": minibatch, "fanout": fanout, "batch_size": batch_size}
    results: Dict[str, List[MethodRow]] = {}
    for dataset in datasets:
        per_seed: List[List[MethodRow]] = []
        for seed in range(scale.num_seeds):
            graph = _load_citation(dataset, scale, seed)
            rows = [
                run_fp32(graph, "gcn", scale.hidden_features,
                         epochs=scale.train_epochs, seed=seed, **sampled),
                run_uniform_qat(graph, 8, "gcn", scale.hidden_features,
                                epochs=scale.train_epochs, seed=seed,
                                use_degree_quant=True, **sampled),
                run_uniform_qat(graph, 4, "gcn", scale.hidden_features,
                                epochs=scale.train_epochs, seed=seed,
                                use_degree_quant=True, **sampled),
                run_a2q(graph, scale.hidden_features, epochs=scale.train_epochs, seed=seed),
            ]
            for lambda_value in lambdas:
                rows.append(run_mixq(graph, lambda_value, bit_choices, "gcn",
                                     scale.hidden_features,
                                     search_epochs=scale.search_epochs,
                                     train_epochs=scale.train_epochs, seed=seed,
                                     **sampled))
            per_seed.append(rows)
        results[dataset] = _seeded(per_seed)
    return results


def table4_mixq_with_dq(dataset: str = "cora", scale: ExperimentScale = QUICK,
                        bit_choices: Sequence[int] = (2, 4, 8),
                        lambdas: Sequence[float] = (EPSILON_LAMBDA, 0.1, 1.0)
                        ) -> List[MethodRow]:
    """Table 4: native MixQ vs MixQ + DQ on one dataset (two-layer GCN)."""
    per_seed: List[List[MethodRow]] = []
    for seed in range(scale.num_seeds):
        graph = _load_citation(dataset, scale, seed)
        rows: List[MethodRow] = []
        for lambda_value in lambdas:
            rows.append(run_mixq(graph, lambda_value, bit_choices, "gcn",
                                 scale.hidden_features,
                                 search_epochs=scale.search_epochs,
                                 train_epochs=scale.train_epochs, seed=seed))
            rows.append(run_mixq(graph, lambda_value, bit_choices, "gcn",
                                 scale.hidden_features,
                                 search_epochs=scale.search_epochs,
                                 train_epochs=scale.train_epochs, seed=seed,
                                 with_degree_quant=True))
        per_seed.append(rows)
    return _seeded(per_seed)


def table5_mixq_dq_vs_a2q(datasets: Sequence[str] = ("cora", "citeseer", "pubmed"),
                          scale: ExperimentScale = QUICK,
                          bit_choices: Sequence[int] = (2, 4, 8)
                          ) -> Dict[str, List[MethodRow]]:
    """Table 5: A²Q vs MixQ + DQ (both use graph structure for quantization)."""
    results: Dict[str, List[MethodRow]] = {}
    for dataset in datasets:
        per_seed: List[List[MethodRow]] = []
        for seed in range(scale.num_seeds):
            graph = _load_citation(dataset, scale, seed)
            rows = [
                run_a2q(graph, scale.hidden_features, epochs=scale.train_epochs, seed=seed),
                run_mixq(graph, EPSILON_LAMBDA, bit_choices, "gcn", scale.hidden_features,
                         search_epochs=scale.search_epochs,
                         train_epochs=scale.train_epochs, seed=seed,
                         with_degree_quant=True, method_name="MixQ + DQ"),
            ]
            per_seed.append(rows)
        results[dataset] = _seeded(per_seed)
    return results


def table6_graphsage(datasets: Sequence[str] = ("cora", "citeseer", "pubmed"),
                     scale: ExperimentScale = QUICK,
                     bit_choices: Sequence[int] = (2, 4, 8),
                     lambdas: Sequence[float] = (0.1, 1.0)) -> Dict[str, List[MethodRow]]:
    """Table 6: GraphSAGE node classification with MixQ as a standalone method."""
    results: Dict[str, List[MethodRow]] = {}
    for dataset in datasets:
        per_seed: List[List[MethodRow]] = []
        for seed in range(scale.num_seeds):
            graph = _load_citation(dataset, scale, seed)
            rows = [run_fp32(graph, "sage", scale.hidden_features,
                             epochs=scale.train_epochs, seed=seed)]
            for lambda_value in lambdas:
                rows.append(run_mixq(graph, lambda_value, bit_choices, "sage",
                                     scale.hidden_features,
                                     search_epochs=scale.search_epochs,
                                     train_epochs=scale.train_epochs, seed=seed))
            per_seed.append(rows)
        results[dataset] = _seeded(per_seed)
    return results


def table7_large_scale(datasets: Sequence[str] = ("reddit", "ogb-proteins",
                                                  "ogb-products", "igb"),
                       scale: ExperimentScale = QUICK,
                       bit_choices: Sequence[int] = (2, 4, 8),
                       lambdas: Sequence[float] = (EPSILON_LAMBDA, 0.1, 1.0),
                       minibatch: bool = False,
                       fanout: Optional[int] = 10,
                       batch_size: int = 256
                       ) -> Dict[str, List[MethodRow]]:
    """Table 7: GraphSAGE + MixQ on the large-scale dataset stand-ins.

    OGB-Proteins is multi-label and evaluated with ROC-AUC, the others with
    accuracy — the same metrics the paper reports.  ``minibatch=True`` is
    the paper-faithful configuration here: the original experiments run
    GraphSAGE with neighbour sampling, and it is the only configuration that
    scales to stand-ins beyond a few thousand nodes.
    """
    sampled = {"minibatch": minibatch, "fanout": fanout, "batch_size": batch_size}
    results: Dict[str, List[MethodRow]] = {}
    for dataset in datasets:
        multilabel = dataset == "ogb-proteins"
        per_seed: List[List[MethodRow]] = []
        for seed in range(scale.num_seeds):
            graph = load_large_scale(dataset, scale=scale.large_scale, seed=seed)
            rows = [run_fp32(graph, "sage", scale.hidden_features,
                             epochs=scale.train_epochs, seed=seed, multilabel=multilabel,
                             **sampled)]
            for lambda_value in lambdas:
                rows.append(run_mixq(graph, lambda_value, bit_choices, "sage",
                                     scale.hidden_features,
                                     search_epochs=scale.search_epochs,
                                     train_epochs=scale.train_epochs, seed=seed,
                                     multilabel=multilabel, **sampled))
            per_seed.append(rows)
        results[dataset] = _seeded(per_seed)
    return results
