"""Shared helpers for the experiment runners.

Provides the per-method runners (FP32, uniform QAT, Degree-Quant, A²Q,
MixQ-GNN native and MixQ + DQ) for node classification, the row/format
utilities used to print paper-style tables, and seed aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.mixq import MixQNodeClassifier, MixQResult
from repro.gnn.models import build_node_model
from repro.graphs.graph import Graph
from repro.quant.a2q import A2QNodeClassifier
from repro.quant.bitops import FP32_BITS, BitOpsCounter
from repro.quant.degree_quant import attach_degree_probabilities, degree_quant_factory
from repro.quant.qmodules import (
    QuantNodeClassifier,
    gcn_component_names,
    sage_component_names,
    uniform_assignment,
)
from repro.core.build import layer_dimensions
from repro.training.minibatch import MinibatchTrainer
from repro.training.trainer import train_node_classifier


def _train(model, graph: Graph, epochs: int, lr: float, multilabel: bool,
           minibatch: bool, fanout: Optional[int], batch_size: int, seed: int):
    """Route one training run through the full-batch or minibatch engine."""
    if minibatch:
        trainer = MinibatchTrainer(model, fanouts=fanout, batch_size=batch_size,
                                   lr=lr, multilabel=multilabel, seed=seed)
        return trainer.fit(graph, epochs=epochs)
    return train_node_classifier(model, graph, epochs=epochs, lr=lr,
                                 multilabel=multilabel)


@dataclass
class MethodRow:
    """One row of a results table: method, accuracy (mean ± std), bits, GBitOPs."""

    method: str
    accuracies: List[float] = field(default_factory=list)
    bits: float = float(FP32_BITS)
    giga_bit_operations: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.accuracies)) if self.accuracies else float("nan")

    @property
    def std_accuracy(self) -> float:
        return float(np.std(self.accuracies)) if self.accuracies else float("nan")

    def as_dict(self) -> Dict[str, float]:
        return {"method": self.method, "accuracy": self.mean_accuracy,
                "std": self.std_accuracy, "bits": self.bits,
                "gbitops": self.giga_bit_operations, **self.extra}


def format_table(title: str, rows: Sequence[MethodRow],
                 metric_name: str = "Accuracy") -> str:
    """Render rows in the layout of the paper's tables."""
    lines = [title, "-" * len(title),
             f"{'Method':<22} {metric_name + ' (%)':>16} {'Bits':>8} {'GBitOPs':>10}"]
    for row in rows:
        accuracy = f"{row.mean_accuracy * 100:5.1f} ± {row.std_accuracy * 100:4.1f}"
        lines.append(f"{row.method:<22} {accuracy:>16} {row.bits:>8.2f} "
                     f"{row.giga_bit_operations:>10.3f}")
    return "\n".join(lines)


def run_seeds(runner: Callable[[int], float], num_seeds: int,
              base_seed: int = 0) -> List[float]:
    """Run a scalar-returning experiment across seeds."""
    return [runner(base_seed + offset) for offset in range(num_seeds)]


# --------------------------------------------------------------------------- #
# per-method node-classification runners
# --------------------------------------------------------------------------- #
def _architecture_dims(graph: Graph, hidden: int, num_layers: int) -> list:
    return layer_dimensions(graph.num_features, hidden, graph.num_classes, num_layers)


def run_fp32(graph: Graph, conv_type: str = "gcn", hidden: int = 16,
             num_layers: int = 2, epochs: int = 100, lr: float = 0.02,
             seed: int = 0, multilabel: bool = False, minibatch: bool = False,
             fanout: Optional[int] = 10, batch_size: int = 256) -> MethodRow:
    """FP32 baseline: accuracy plus the architecture's FP32 BitOPs."""
    rng = np.random.default_rng(seed)
    model = build_node_model(conv_type, graph.num_features, hidden, graph.num_classes,
                             num_layers=num_layers, rng=rng)
    result = _train(model, graph, epochs, lr, multilabel, minibatch, fanout,
                    batch_size, seed)
    operations = model.operation_count(graph)
    return MethodRow("FP32", [result.test_accuracy], bits=float(FP32_BITS),
                     giga_bit_operations=operations * FP32_BITS / 1e9)


def _component_names(conv_type: str, num_layers: int) -> list:
    if conv_type == "gcn":
        return gcn_component_names(num_layers)
    if conv_type == "sage":
        return sage_component_names(num_layers)
    raise KeyError(f"uniform assignment helper supports gcn/sage, got {conv_type!r}")


def run_uniform_qat(graph: Graph, bits: int, conv_type: str = "gcn", hidden: int = 16,
                    num_layers: int = 2, epochs: int = 100, lr: float = 0.02,
                    seed: int = 0, multilabel: bool = False,
                    use_degree_quant: bool = False,
                    method_name: Optional[str] = None, minibatch: bool = False,
                    fanout: Optional[int] = 10, batch_size: int = 256) -> MethodRow:
    """Uniform fixed-bit QAT — also used as the DQ baseline when requested."""
    rng = np.random.default_rng(seed)
    assignment = uniform_assignment(_component_names(conv_type, num_layers), bits)
    factory = degree_quant_factory(rng=rng) if use_degree_quant else None
    kwargs = {"quantizer_factory": factory} if factory is not None else {}
    model = QuantNodeClassifier.from_assignment(
        _architecture_dims(graph, hidden, num_layers), conv_type, assignment,
        rng=rng, **kwargs)
    if use_degree_quant:
        attach_degree_probabilities(model, graph)
    result = _train(model, graph, epochs, lr, multilabel, minibatch, fanout,
                    batch_size, seed)
    counter: BitOpsCounter = model.bit_operations(graph)
    name = method_name or (f"DQ INT{bits}" if use_degree_quant else f"QAT INT{bits}")
    return MethodRow(name, [result.test_accuracy], bits=float(bits),
                     giga_bit_operations=counter.giga_bit_operations())


def run_a2q(graph: Graph, hidden: int = 16, num_layers: int = 2, epochs: int = 100,
            lr: float = 0.02, penalty_weight: float = 0.05, seed: int = 0,
            multilabel: bool = False) -> MethodRow:
    """A²Q baseline: per-node learnable scales/bit-widths with a memory penalty."""
    rng = np.random.default_rng(seed)
    model = A2QNodeClassifier(_architecture_dims(graph, hidden, num_layers),
                              graph.num_nodes, rng=rng)
    result = train_node_classifier(
        model, graph, epochs=epochs, lr=lr, multilabel=multilabel,
        extra_penalty=lambda m, g: m.memory_penalty(g), penalty_weight=penalty_weight)
    counter = model.bit_operations(graph)
    return MethodRow("A2Q", [result.test_accuracy], bits=model.average_bits(),
                     giga_bit_operations=counter.giga_bit_operations(),
                     extra={"quant_parameters": model.num_quantization_parameters()})


def run_mixq(graph: Graph, lambda_value: float, bit_choices: Sequence[int] = (2, 4, 8),
             conv_type: str = "gcn", hidden: int = 16, num_layers: int = 2,
             search_epochs: int = 40, train_epochs: int = 100, lr: float = 0.02,
             seed: int = 0, multilabel: bool = False,
             with_degree_quant: bool = False,
             method_name: Optional[str] = None, minibatch: bool = False,
             fanout: Optional[int] = 10, batch_size: int = 256) -> MethodRow:
    """MixQ-GNN (optionally combined with the DQ quantizer)."""
    factory_kwargs = {}
    if with_degree_quant:
        factory_kwargs["quantizer_factory"] = degree_quant_factory(
            rng=np.random.default_rng(seed))
    mixq = MixQNodeClassifier(conv_type, graph.num_features, hidden, graph.num_classes,
                              num_layers=num_layers, bit_choices=bit_choices,
                              lambda_value=lambda_value, seed=seed, **factory_kwargs)
    result: MixQResult = mixq.fit(graph, search_epochs=search_epochs,
                                  train_epochs=train_epochs, lr=lr,
                                  multilabel=multilabel, minibatch=minibatch,
                                  fanout=fanout, batch_size=batch_size)
    if method_name is None:
        lambda_label = "-ε" if 0 > lambda_value > -1e-4 else f"{lambda_value:g}"
        method_name = f"MixQ(λ={lambda_label})" + (" + DQ" if with_degree_quant else "")
    return MethodRow(method_name, [result.accuracy], bits=result.average_bits,
                     giga_bit_operations=result.giga_bit_operations)


def merge_seed_rows(rows: Sequence[MethodRow]) -> MethodRow:
    """Aggregate rows of the same method produced with different seeds."""
    if not rows:
        raise ValueError("no rows to merge")
    merged = MethodRow(rows[0].method)
    for row in rows:
        merged.accuracies.extend(row.accuracies)
    merged.bits = float(np.mean([row.bits for row in rows]))
    merged.giga_bit_operations = float(np.mean([row.giga_bit_operations for row in rows]))
    return merged
