"""Figure experiments: Figures 1, 2, 3, 8 and 9 of the paper."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.search_space import (
    assignment_average_bits,
    bit_width_histogram,
    pareto_front,
    sample_assignments,
)
from repro.experiments.common import run_mixq
from repro.experiments.config import ExperimentScale, QUICK
from repro.gnn.models import build_node_model
from repro.graphs.datasets import load_node_dataset
from repro.quant.bitops import FP32_BITS
from repro.quant.qmodules import (
    QuantNodeClassifier,
    gcn_component_names,
)
from repro.quant.quantizer import AffineQuantizer
from repro.tensor.sparse import SparseTensor
from repro.training.trainer import train_node_classifier


# --------------------------------------------------------------------------- #
# Figure 1 — operations vs accuracy across layer families and depths
# --------------------------------------------------------------------------- #
@dataclass
class Figure1Point:
    """One architecture instance in the operations-versus-accuracy plane."""

    layer_type: str
    num_layers: int
    operations: int
    accuracy: float
    num_parameters: int


def figure1_operations_vs_accuracy(
        layer_types: Sequence[str] = ("gcn", "gat", "gin", "sage", "tag", "transformer"),
        depths: Sequence[int] = (1, 2, 3),
        scale: ExperimentScale = QUICK,
        dataset: str = "cora", seed: int = 0) -> List[Figure1Point]:
    """Sweep layer families and depths on the Cora stand-in (Figure 1)."""
    graph = load_node_dataset(dataset, scale=scale.citation_scale, seed=seed)
    points: List[Figure1Point] = []
    for layer_type in layer_types:
        for depth in depths:
            rng = np.random.default_rng(seed + depth)
            model = build_node_model(layer_type, graph.num_features, scale.hidden_features,
                                     graph.num_classes, num_layers=depth, rng=rng)
            result = train_node_classifier(model, graph, epochs=scale.train_epochs,
                                           lr=0.01)
            points.append(Figure1Point(
                layer_type=layer_type,
                num_layers=depth,
                operations=model.operation_count(graph),
                accuracy=result.test_accuracy,
                num_parameters=model.num_parameters(),
            ))
    return points


def spearman_rank_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman's rank correlation (the statistic quoted for Figure 1)."""
    from scipy import stats

    correlation, _ = stats.spearmanr(x, y)
    return float(correlation)


# --------------------------------------------------------------------------- #
# Figures 2 and 3 — bit-width combination scatter and Pareto-front histograms
# --------------------------------------------------------------------------- #
@dataclass
class Figure2Result:
    """Sampled bit-width combinations with accuracies plus the FP32 reference."""

    points: List[Tuple[float, float]] = field(default_factory=list)
    assignments: List[Dict[str, int]] = field(default_factory=list)
    fp32_accuracy: float = 0.0
    pareto_indices: List[int] = field(default_factory=list)


def figure2_bitwidth_scatter(num_samples: int = 25, scale: ExperimentScale = QUICK,
                             bit_choices: Sequence[int] = (2, 4, 8),
                             dataset: str = "cora", seed: int = 0) -> Figure2Result:
    """Sample the 3^9 search space of a two-layer GCN and measure accuracies.

    The paper evaluates the full grid; on CPU a seeded random sample is used
    and the Pareto front is extracted from the sample.
    """
    graph = load_node_dataset(dataset, scale=scale.citation_scale, seed=seed)
    component_names = gcn_component_names(2)
    rng = np.random.default_rng(seed)
    assignments = sample_assignments(component_names, bit_choices, num_samples, rng)

    layer_dims = [(graph.num_features, scale.hidden_features),
                  (scale.hidden_features, graph.num_classes)]
    result = Figure2Result()
    fp32_model = build_node_model("gcn", graph.num_features, scale.hidden_features,
                                  graph.num_classes, num_layers=2,
                                  rng=np.random.default_rng(seed))
    result.fp32_accuracy = train_node_classifier(
        fp32_model, graph, epochs=scale.train_epochs).test_accuracy

    for index, assignment in enumerate(assignments):
        model = QuantNodeClassifier.from_assignment(
            layer_dims, "gcn", assignment, rng=np.random.default_rng(seed + index))
        training = train_node_classifier(model, graph, epochs=scale.train_epochs)
        result.points.append((assignment_average_bits(assignment),
                              training.test_accuracy))
        result.assignments.append(assignment)
    result.pareto_indices = pareto_front(result.points)
    return result


def figure3_pareto_histograms(figure2: Figure2Result,
                              bit_choices: Sequence[int] = (2, 4, 8)
                              ) -> Dict[str, Dict[int, int]]:
    """Histogram the per-component bit-widths along the Figure 2 Pareto front."""
    component_names = gcn_component_names(2)
    pareto_assignments = [figure2.assignments[i] for i in figure2.pareto_indices]
    return bit_width_histogram(pareto_assignments, component_names, bit_choices)


# --------------------------------------------------------------------------- #
# Figure 8 — BitOPs vs measured inference time of one message-passing layer
# --------------------------------------------------------------------------- #
@dataclass
class Figure8Point:
    """One (graph size, precision) measurement."""

    num_nodes: int
    num_features: int
    bits: int
    bit_operations: float
    inference_seconds: float


def figure8_bitops_vs_time(node_counts: Sequence[int] = (200, 500, 1000),
                           num_features: int = 64,
                           bit_widths: Sequence[int] = (8, 16, 32),
                           repeats: int = 3, seed: int = 0) -> List[Figure8Point]:
    """Time a single quantized message-passing layer at several precisions.

    The paper measures dedicated low-precision kernels on three hardware
    platforms; this substrate has no sub-word integer kernels (scipy
    dispatches every sparse-dense product to the same BLAS-like loop), so the
    quantized variants carry their integer values in float32 arrays after the
    Theorem 1 quantization step — exactness is unaffected because the values
    are small integers.  What the measurement preserves is the paper's claim:
    the BitOPs metric tracks the measured wall-clock cost of the
    message-passing product across workload sizes and precisions.
    """
    rng = np.random.default_rng(seed)
    points: List[Figure8Point] = []
    for num_nodes in node_counts:
        density = min(10.0 / num_nodes, 1.0)
        mask = rng.random((num_nodes, num_nodes)) < density
        values = rng.random((num_nodes, num_nodes)) * mask
        adjacency = SparseTensor(values.astype(np.float32))
        features = rng.standard_normal((num_nodes, num_features)).astype(np.float32)
        operations = 2 * adjacency.nnz * num_features
        for bits in bit_widths:
            if bits >= FP32_BITS:
                operand_a = adjacency.csr
                operand_x = features
            else:
                # Quantize once (Theorem 1 pre-processing), then time the
                # integer product itself.
                quantizer_a = AffineQuantizer(bits=bits, symmetric=True)
                quantizer_x = AffineQuantizer(bits=bits)
                qa_values, _ = quantizer_a.quantize_array(adjacency.values)
                qx_values, _ = quantizer_x.quantize_array(features)
                operand_a = adjacency.with_values(qa_values.astype(np.float32)).csr
                operand_x = qx_values.astype(np.float32)
            start = time.perf_counter()
            for _ in range(repeats):
                _ = operand_a @ operand_x
            elapsed = (time.perf_counter() - start) / repeats
            points.append(Figure8Point(
                num_nodes=num_nodes, num_features=num_features, bits=bits,
                bit_operations=operations * bits, inference_seconds=elapsed))
    return points


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation between BitOPs and inference time (Figure 8 statistic)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


# --------------------------------------------------------------------------- #
# Figure 9 — effect of lambda on average bit-width and accuracy
# --------------------------------------------------------------------------- #
@dataclass
class Figure9Point:
    """One lambda setting with the resulting average bits and accuracy."""

    lambda_value: float
    average_bits: float
    accuracy: float


def figure9_lambda_sweep(lambdas: Sequence[float] = (-0.1, -0.01, 0.0, 0.01, 0.1),
                         scale: ExperimentScale = QUICK,
                         bit_choices: Sequence[int] = (2, 4, 8),
                         dataset: str = "cora", num_seeds: int = 2
                         ) -> List[Figure9Point]:
    """Sweep the penalty weight lambda (Figure 9a/9b)."""
    points: List[Figure9Point] = []
    for lambda_value in lambdas:
        bits_values: List[float] = []
        accuracy_values: List[float] = []
        for seed in range(num_seeds):
            graph = load_node_dataset(dataset, scale=scale.citation_scale, seed=seed)
            row = run_mixq(graph, lambda_value, bit_choices, "gcn", scale.hidden_features,
                           search_epochs=scale.search_epochs,
                           train_epochs=scale.train_epochs, seed=seed)
            bits_values.append(row.bits)
            accuracy_values.append(row.mean_accuracy)
        points.append(Figure9Point(
            lambda_value=lambda_value,
            average_bits=float(np.mean(bits_values)),
            accuracy=float(np.mean(accuracy_values)),
        ))
    return points
