"""Static tables: Table 1 (complexity) and Table 2 (dataset characteristics)."""

from __future__ import annotations

from typing import Dict, List

from repro.graphs.datasets import dataset_characteristics
from repro.quant.complexity import complexity_table


def table1_complexity(num_nodes: int = 2708, num_features: int = 1433,
                      num_layers: int = 2, bits: float = 8.0) -> List[Dict[str, object]]:
    """Table 1 with the symbolic formulas and concrete counts for a Cora-sized GCN."""
    rows: List[Dict[str, object]] = []
    for method, row in complexity_table().items():
        rows.append({
            "method": method,
            "space": row.space,
            "time_fp32": row.time_fp32,
            "time_int": row.time_int,
            "space_count": row.space_count(num_nodes, num_features, num_layers, bits),
            "time_fp32_count": row.time_fp32_count(num_nodes, num_features, num_layers),
            "time_int_count": row.time_int_count(num_nodes, num_features, num_layers),
        })
    return rows


def table2_datasets() -> Dict[str, Dict[str, object]]:
    """Table 2: the characteristics registry for every dataset referenced."""
    return dataset_characteristics()


def format_table1(rows: List[Dict[str, object]]) -> str:
    lines = ["Table 1 — Space and time complexity",
             f"{'Method':<10} {'Space':<18} {'Time (FP32)':<16} {'Time (INT)':<22} "
             f"{'#params':>12}"]
    for row in rows:
        lines.append(f"{row['method']:<10} {row['space']:<18} {row['time_fp32']:<16} "
                     f"{row['time_int']:<22} {row['space_count']:>12.0f}")
    return "\n".join(lines)


def format_table2(table: Dict[str, Dict[str, object]]) -> str:
    lines = ["Table 2 — Dataset characteristics",
             f"{'Dataset':<14} {'#graphs':>8} {'#nodes':>10} {'#classes':>9}"]
    for name, spec in table.items():
        lines.append(f"{name:<14} {spec.get('num_graphs', 1):>8} "
                     f"{spec.get('num_nodes', 0):>10} {spec.get('num_classes', 0):>9}")
    return "\n".join(lines)
