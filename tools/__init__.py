"""Repository tooling: CI gates (check_bench, check_docs) and reprolint."""
