"""Runtime lock sanitizer — the dynamic half of RL03.

RL03 derives a lock-acquisition-order graph *statically* from lexical
``with`` nesting.  This module observes the same property at runtime:
wrap each lock of interest in a :class:`SanitizedLock` and every thread
records a ``held -> acquired`` edge whenever it takes a lock while
already holding another.  Concurrency tests then assert that the
observed edge set is a subset of the static graph (the static analysis
over-approximates, so runtime edges outside it mean RL03 missed a path)
and that the combined graph is acyclic.

Usage::

    sanitizer = LockSanitizer()
    cache._lock = sanitizer.wrap("LRUCache.self._lock", cache._lock)
    ...
    assert sanitizer.edges() <= static_edges
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple


class SanitizedLock:
    """Context-manager proxy around a real lock that reports to a sanitizer.

    Supports the subset of the lock protocol the repo uses: ``with``,
    explicit ``acquire``/``release``, and being passed to
    ``threading.Condition`` (which calls ``acquire``/``release`` and
    probes ``_is_owned`` on RLocks — we forward unknown attributes).
    """

    def __init__(self, name: str, inner, sanitizer: "LockSanitizer") -> None:
        self.name = name
        self._inner = inner
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._record_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._sanitizer._record_release(self.name)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __getattr__(self, attribute: str):
        return getattr(self._inner, attribute)


class LockSanitizer:
    """Records per-thread lock-acquisition order edges.

    Re-entrant acquisitions of the *same* named lock (RLock re-entry) do
    not create edges; acquiring lock B while holding lock A records the
    edge ``(A, B)`` exactly as RL03's static graph would.
    """

    def __init__(self) -> None:
        self._held: Dict[int, List[str]] = {}
        self._edges: Set[Tuple[str, str]] = set()
        self._mutex = threading.Lock()

    def wrap(self, name: str, lock) -> SanitizedLock:
        return SanitizedLock(name, lock, self)

    def _record_acquire(self, name: str) -> None:
        thread_id = threading.get_ident()
        with self._mutex:
            stack = self._held.setdefault(thread_id, [])
            for held in stack:
                if held != name:
                    self._edges.add((held, name))
            stack.append(name)

    def _record_release(self, name: str) -> None:
        thread_id = threading.get_ident()
        with self._mutex:
            stack = self._held.get(thread_id, [])
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] == name:
                    del stack[index]
                    break

    def edges(self) -> Set[Tuple[str, str]]:
        with self._mutex:
            return set(self._edges)

    def find_cycle(self) -> Optional[List[str]]:
        """DFS cycle detection over the observed edges (None when acyclic)."""
        graph: Dict[str, Set[str]] = {}
        for source, target in self.edges():
            graph.setdefault(source, set()).add(target)
            graph.setdefault(target, set())
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in graph}
        path: List[str] = []

        def visit(node: str) -> Optional[List[str]]:
            color[node] = GRAY
            path.append(node)
            for successor in sorted(graph[node]):
                if color[successor] == GRAY:
                    return path[path.index(successor):]
                if color[successor] == WHITE:
                    cycle = visit(successor)
                    if cycle is not None:
                        return cycle
            path.pop()
            color[node] = BLACK
            return None

        for node in sorted(graph):
            if color[node] == WHITE:
                cycle = visit(node)
                if cycle is not None:
                    return cycle
        return None
