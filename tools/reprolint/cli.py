"""``python -m tools.reprolint`` — the invariant linter's command line.

Exit codes: 0 = clean, 1 = violations found, 2 = usage error.  Every
finding prints ``path:line:col: RLxx message`` plus a fix hint, so a CI
failure is actionable without opening the file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from tools.reprolint.core import Violation, analyze_paths
from tools.reprolint.rules import ALL_RULES, RULES_BY_ID
from tools.reprolint.rules.rl03_locks import build_lock_order_graph, find_cycle


def _select_rules(spec: Optional[str]):
    if not spec:
        return list(ALL_RULES)
    selected = []
    for rule_id in (part.strip() for part in spec.split(",")):
        if rule_id not in RULES_BY_ID:
            raise SystemExit(2)
        selected.append(RULES_BY_ID[rule_id])
    return selected


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Invariant-enforcing static analysis: determinism "
                    "(RL01), integer-path purity (RL02), lock discipline "
                    "(RL03), API hygiene (RL04).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--rules", metavar="RL01,RL03",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule inventory and exit")
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.name}")
        return 0

    try:
        rules = _select_rules(arguments.rules)
    except SystemExit:
        known = ", ".join(sorted(RULES_BY_ID))
        print(f"error: --rules accepts a comma-separated subset of "
              f"{known}", file=sys.stderr)
        return 2

    paths = [Path(raw) for raw in arguments.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    violations, file_count = analyze_paths(paths, rules)

    # Lock ordering is a whole-tree property: per-file cycles are caught by
    # RL03 itself, cross-file cycles only by merging every file's graph.
    if any(rule.rule_id == "RL03" for rule in rules):
        graph = build_lock_order_graph(paths)
        cycle = find_cycle(graph)
        if cycle:
            violations.append(Violation(
                rule="RL03", path=Path("<cross-file>"), line=0, col=0,
                message="lock-acquisition-order cycle across files "
                        "(potential deadlock): "
                        + " -> ".join(cycle + [cycle[0]]),
                hint="acquire these locks in one globally consistent "
                     "order"))

    root = Path.cwd()
    for violation in violations:
        print(violation.format(root=root))
    rule_ids = ", ".join(rule.rule_id for rule in rules)
    if violations:
        print(f"\nreprolint: {len(violations)} violation(s) in "
              f"{file_count} file(s) [{rule_ids}]", file=sys.stderr)
        return 1
    print(f"reprolint: clean — {file_count} file(s) checked [{rule_ids}]")
    return 0


def run(paths: Sequence[str], rules: Optional[str] = None) -> List[Violation]:
    """Programmatic entry point (used by the self-check test and docs)."""
    selected = _select_rules(rules)
    violations, _ = analyze_paths([Path(raw) for raw in paths], selected)
    return violations
