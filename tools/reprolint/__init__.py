"""reprolint — invariant-enforcing static analysis for this repository.

Run it as ``python -m tools.reprolint src tests benchmarks examples``.

Rule families (details + authoring guide in ``docs/static-analysis.md``):

* **RL01 determinism** — no global-state RNG, no wall-clock seeding.
* **RL02 integer-path purity** — Theorem-1 stages keep their accumulation
  in int64 and exit to floats only explicitly.
* **RL03 lock discipline** — ``# guarded-by:`` attributes are only
  touched under their lock; the acquisition-order graph stays acyclic.
* **RL04 API hygiene** — no deprecated symbols, no artifact-version
  literals outside ``serving/artifact.py``.

Suppress per line with ``# reprolint: disable=RL01`` or per file with
``# reprolint: disable-file=RL04``.
"""

from tools.reprolint.core import (
    Rule,
    Violation,
    analyze_paths,
    analyze_source,
    collect_files,
)
from tools.reprolint.rules import ALL_RULES, RULES_BY_ID

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Rule",
    "Violation",
    "analyze_paths",
    "analyze_source",
    "collect_files",
]
