import sys

from tools.reprolint.cli import main

if __name__ == "__main__":
    sys.exit(main())
