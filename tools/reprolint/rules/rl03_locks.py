"""RL03 — lock discipline: guarded attributes and acquisition order.

The cache and serving subsystems are explicitly concurrent: the LRU store,
the block cache's logical counters, and the async engine's pending queue
are all mutated from many threads.  The concurrency tests catch a missed
lock only when the interleaving happens to bite; this rule makes the lock
contract part of the source text instead.

Convention (documented in ``docs/static-analysis.md``):

* Declare a guarded attribute where it is initialised::

      self._hits = 0  # guarded-by: self._lock

  From then on, every read or write of ``self._hits`` anywhere in the
  class must sit lexically inside ``with self._lock:`` (multi-item and
  nested ``with`` both count).

* A method that *requires* its caller to hold the lock (the classic
  ``_locked`` helper) declares that on its ``def`` line::

      def _get_locked(self, key, default):  # requires-lock: self._lock

  Accesses inside such a method are treated as guarded; the annotation is
  machine-checked documentation of the calling contract.

* ``__init__`` (and other pre-publication hooks in :data:`UNPUBLISHED`)
  are exempt: no other thread can hold a reference yet.

Lock-order graph: every ``with`` acquisition of a lock-like expression
(attribute path containing ``lock``) becomes a node ``Class.expr``;
lexical nesting (including multi-item ``with a, b:``) adds ordered edges.
:data:`LOCK_ALIASES` folds cross-object handles onto the owning lock
(``BlockCache.self._lru.lock`` *is* ``LRUCache.self._lock``), and a cycle
in the folded graph is reported as a potential deadlock.  The runtime
lock sanitizer (``tools.reprolint.sanitizer``) records the orders real
concurrency tests exercise so the static graph can be cross-checked.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from tools.reprolint.core import (
    FileContext,
    Rule,
    Violation,
    collect_files,
    dotted_name,
    load_context,
)

GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([\w.\[\]']+)")
REQUIRES_LOCK = re.compile(r"#\s*requires-lock:\s*([\w.\[\]']+)")

#: Methods that run before the object is visible to other threads.
UNPUBLISHED = {"__init__", "__new__", "__post_init__", "__init_subclass__"}

#: Cross-object lock handles folded onto the lock they really are.
#: ``BlockCache`` acquires the LRU store's lock through its public
#: ``.lock`` property; for ordering purposes that *is* ``LRUCache._lock``.
LOCK_ALIASES: Dict[str, str] = {
    "BlockCache.self._lru.lock": "LRUCache.self._lock",
    "BlockCache.self._lru._lock": "LRUCache.self._lock",
}


def _looks_like_lock(expression: str) -> bool:
    tail = expression.rsplit(".", 1)[-1]
    return "lock" in tail.lower()


class LockDisciplineRule(Rule):
    rule_id = "RL03"
    name = "lock-discipline"
    hint = ("wrap the access in `with <lock>:`, or annotate the method "
            "`# requires-lock: <lock>` if the caller must hold it")

    def check(self, context: FileContext) -> Iterable[Violation]:
        for node in context.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(context, node)
        yield from self._check_order(context)

    # ------------------------------------------------------------------ #
    def _check_class(self, context: FileContext,
                     klass: ast.ClassDef) -> Iterator[Violation]:
        guarded = _guarded_attributes(context, klass)
        if not guarded:
            return
        for method in klass.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in UNPUBLISHED:
                continue
            required = _required_locks(context, method)
            yield from self._check_method(context, klass, method, guarded,
                                          required)

    def _check_method(self, context: FileContext, klass: ast.ClassDef,
                      method: ast.FunctionDef, guarded: Dict[str, str],
                      required: Set[str]) -> Iterator[Violation]:
        held_stack: List[Set[str]] = [set(required)]

        def held() -> Set[str]:
            merged: Set[str] = set()
            for frame in held_stack:
                merged |= frame
            return merged

        def visit(node: ast.AST) -> Iterator[Violation]:
            if isinstance(node, ast.With):
                acquired = set()
                for item in node.items:
                    expression = _expression_text(item.context_expr)
                    if expression is not None:
                        acquired.add(expression)
                    yield from visit(item.context_expr)
                held_stack.append(acquired)
                for child in node.body:
                    yield from visit(child)
                held_stack.pop()
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                # nested callables may run after the enclosing `with` has
                # released: drop inherited frames, honour only their own
                # requires-lock annotation
                nested_required = set()
                if not isinstance(node, ast.Lambda):
                    nested_required = _required_locks(context, node)
                saved = held_stack[:]
                held_stack[:] = [nested_required]
                for child in ast.iter_child_nodes(node):
                    yield from visit(child)
                held_stack[:] = saved
                return
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self" and node.attr in guarded:
                lock = guarded[node.attr]
                if lock not in held():
                    access = "write to" if isinstance(node.ctx,
                                                      (ast.Store, ast.Del)) \
                        else "read of"
                    yield self.violation(
                        context, node,
                        f"{access} {klass.name}.{node.attr} (guarded by "
                        f"{lock}) outside `with {lock}:`")
                return
            for child in ast.iter_child_nodes(node):
                yield from visit(child)

        for statement in method.body:
            yield from visit(statement)

    # ------------------------------------------------------------------ #
    def _check_order(self, context: FileContext) -> Iterator[Violation]:
        graph, sites = _file_lock_graph(context)
        cycle = find_cycle(graph)
        if cycle:
            line, col = sites.get((cycle[0], cycle[1]), (1, 0))
            yield Violation(
                rule=self.rule_id, path=context.path, line=line, col=col,
                message="lock-acquisition-order cycle (potential deadlock): "
                        + " -> ".join(cycle + [cycle[0]]),
                hint="acquire these locks in one globally consistent order")


# --------------------------------------------------------------------- #
# annotation harvesting
# --------------------------------------------------------------------- #
def _guarded_attributes(context: FileContext,
                        klass: ast.ClassDef) -> Dict[str, str]:
    """``attribute -> lock expression`` declared via # guarded-by comments."""
    guarded: Dict[str, str] = {}
    for node in ast.walk(klass):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        match = GUARDED_BY.search(context.comment_on(node.lineno))
        if not match:
            continue
        lock = match.group(1)
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                guarded[target.attr] = lock
    return guarded


def _required_locks(context: FileContext, method: ast.FunctionDef) -> Set[str]:
    required: Set[str] = set()
    match = REQUIRES_LOCK.search(context.comment_on(method.lineno))
    if match:
        required.add(match.group(1))
    return required


def _expression_text(node: ast.AST) -> Optional[str]:
    """Normalised text of a lock expression (None for non-lock withs)."""
    dotted = dotted_name(node)
    if dotted is not None and _looks_like_lock(dotted):
        return dotted
    return None


# --------------------------------------------------------------------- #
# lock-order graph
# --------------------------------------------------------------------- #
def _file_lock_graph(context: FileContext
                     ) -> Tuple[Dict[str, Set[str]],
                                Dict[Tuple[str, str], Tuple[int, int]]]:
    """Directed acquisition-order edges of one file, alias-folded."""
    graph: Dict[str, Set[str]] = {}
    sites: Dict[Tuple[str, str], Tuple[int, int]] = {}

    def canonical(class_name: str, expression: str) -> str:
        qualified = f"{class_name}.{expression}"
        return LOCK_ALIASES.get(qualified, qualified)

    def walk(node: ast.AST, class_name: str, held: List[str]) -> None:
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                walk(child, node.name, held)
            return
        if isinstance(node, ast.With):
            acquired: List[str] = []
            for item in node.items:
                expression = _expression_text(item.context_expr)
                if expression is None:
                    continue
                lock = canonical(class_name, expression)
                for holder in held + acquired:
                    if holder != lock:
                        graph.setdefault(holder, set()).add(lock)
                        sites.setdefault((holder, lock),
                                         (node.lineno, node.col_offset))
                graph.setdefault(lock, set())
                acquired.append(lock)
            for child in node.body:
                walk(child, class_name, held + acquired)
            return
        for child in ast.iter_child_nodes(node):
            walk(child, class_name, held)

    for node in context.tree.body:
        walk(node, "<module>", [])
    return graph, sites


def build_lock_order_graph(paths: Sequence[Path]) -> Dict[str, Set[str]]:
    """Merged acquisition-order graph over many files — the artifact the
    runtime sanitizer cross-checks (``tests/tools/test_reprolint.py``)."""
    merged: Dict[str, Set[str]] = {}
    for path in collect_files(paths):
        context = load_context(path, {LockDisciplineRule.rule_id})
        graph, _ = _file_lock_graph(context)
        for node, edges in graph.items():
            merged.setdefault(node, set()).update(edges)
    return merged


def find_cycle(graph: Dict[str, Set[str]]) -> Optional[List[str]]:
    """One cycle of the directed graph as a node list, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack: List[str] = []

    def dfs(node: str) -> Optional[List[str]]:
        color[node] = GRAY
        stack.append(node)
        for neighbour in sorted(graph.get(node, ())):
            if color.get(neighbour, WHITE) == GRAY:
                return stack[stack.index(neighbour):]
            if color.get(neighbour, WHITE) == WHITE:
                found = dfs(neighbour)
                if found:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(graph):
        if color[node] == WHITE:
            found = dfs(node)
            if found:
                return found
    return None
