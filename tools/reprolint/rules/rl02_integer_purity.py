"""RL02 — integer-path purity: no float leaks inside Theorem-1 hot paths.

Theorem 1 prescribes *exactly* where floating point re-enters the
quantized aggregation: the heavy product runs on int64 arrays, and only
the rank-one corrections touch floats, entered through an explicit
``astype(np.float64)`` / ``np.asarray(..., dtype=np.float64)`` (exact for
every representable int64 accumulation the kernels produce).  Anything
else — a true division on an integer accumulator, an implicit int × float
promotion, a narrowing ``astype(np.float32)`` — silently trades
bit-exactness for round-off, and the parity matrix only notices when the
rounded value crosses a quantization boundary.

The rule runs a forward dtype-flow walk over *integer stages* only:

* functions named in :data:`REQUIRED_STAGES` (the Theorem-1 kernels),
  wherever they are defined, and
* any function carrying a ``# reprolint: integer-stage`` comment on (or
  directly above) its ``def`` line — the session executor's integer
  stages opt in this way.

Within a stage it tracks which local names hold integer arrays
(``astype(np.int64)``, ``np.asarray(..., dtype=np.int64)``,
``np.zeros(..., dtype=np.int64)`` …) and flags:

* ``/`` true division with an integer-tracked operand (use ``//`` or exit
  through ``astype(np.float64)`` first);
* arithmetic between an integer-tracked operand and a float operand
  (implicit promotion — the float exit must be explicit);
* ``astype`` to a narrowing float dtype (``float32`` / ``float16``) on an
  integer-tracked value (loses exactness above 2**24);
* float-dtype re-introduction by re-binding an integer-tracked name to a
  float expression without an explicit cast.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional

from tools.reprolint.core import FileContext, Rule, Violation, dotted_name

#: Function names that are *always* integer stages when defined.
REQUIRED_STAGES = {"quantized_spmm", "quantized_edge_spmm"}

#: Marker comment opting a function into the dtype-flow walk.
STAGE_MARKER = "reprolint: integer-stage"

_INT_DTYPES = {"int", "int8", "int16", "int32", "int64",
               "uint8", "uint16", "uint32", "uint64", "intp", "int_"}
_EXACT_FLOAT_DTYPES = {"float64", "double", "longdouble", "float_"}
_NARROW_FLOAT_DTYPES = {"float16", "float32", "half", "single"}

#: ndarray methods that keep integer dtype.
_INT_PRESERVING_METHODS = {
    "sum", "cumsum", "prod", "cumprod", "reshape", "ravel", "flatten",
    "copy", "transpose", "squeeze", "take", "clip", "min", "max", "dot",
    "astype",  # handled specially before this set is consulted
}

#: numpy constructors whose ``dtype=`` keyword decides the result dtype.
_ARRAY_CONSTRUCTORS = {"asarray", "array", "zeros", "ones", "empty", "full",
                       "zeros_like", "ones_like", "empty_like", "full_like"}

INT = "int"
FLOAT = "float"
OTHER = "other"


def _dtype_kind(node: Optional[ast.AST]) -> str:
    """Classify a ``dtype=`` argument expression."""
    if node is None:
        return OTHER
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    else:
        dotted = dotted_name(node)
        if dotted is None:
            return OTHER
        name = dotted.rsplit(".", 1)[-1]
    if name in _INT_DTYPES:
        return INT
    if name in _EXACT_FLOAT_DTYPES or name == "float":
        return FLOAT
    if name in _NARROW_FLOAT_DTYPES:
        return "narrow-float"
    return OTHER


def _is_stage(node: ast.FunctionDef, context: FileContext) -> bool:
    if node.name in REQUIRED_STAGES:
        return True
    for line in (node.lineno, node.lineno - 1):
        if STAGE_MARKER in context.comment_on(line):
            return True
    # decorators push the def line down; scan the decorated span too
    if node.decorator_list:
        first = node.decorator_list[0].lineno - 1
        for line in range(first, node.lineno + 1):
            if STAGE_MARKER in context.comment_on(line):
                return True
    return False


class IntegerPurityRule(Rule):
    rule_id = "RL02"
    name = "integer-purity"
    hint = ("keep the Theorem-1 accumulation in int64; exit to floats only "
            "through an explicit astype(np.float64)")

    def check(self, context: FileContext) -> Iterable[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and _is_stage(node, context):
                yield from _StageWalker(self, context, node).run()


class _StageWalker:
    """Forward dtype-flow over one integer-stage function body."""

    def __init__(self, rule: IntegerPurityRule, context: FileContext,
                 function: ast.FunctionDef):
        self.rule = rule
        self.context = context
        self.function = function
        self.env: Dict[str, str] = {}
        self.violations: List[Violation] = []

    def run(self) -> Iterator[Violation]:
        for statement in self.function.body:
            self._statement(statement)
        return iter(self.violations)

    # ------------------------------------------------------------------ #
    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            kind = self._expr(node.value)
            for target in node.targets:
                self._bind(target, kind)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            kind = self._expr(node.value)
            self._bind(node.target, kind)
        elif isinstance(node, ast.AugAssign):
            target_kind = self.env.get(_target_name(node.target) or "", OTHER)
            value_kind = self._expr(node.value)
            self._binop_check(node, node.op, target_kind, value_kind)
        elif isinstance(node, (ast.Expr, ast.Return)):
            if node.value is not None:
                self._expr(node.value)
        elif isinstance(node, (ast.If, ast.For, ast.While)):
            if isinstance(node, (ast.For,)):
                self._bind(node.target, OTHER)
            test = getattr(node, "test", None) or getattr(node, "iter", None)
            if test is not None:
                self._expr(test)
            for child in node.body + node.orelse:
                self._statement(child)
        elif isinstance(node, ast.With):
            for item in node.items:
                self._expr(item.context_expr)
            for child in node.body:
                self._statement(child)
        elif isinstance(node, (ast.Try,)):
            for child in node.body + node.orelse + node.finalbody:
                self._statement(child)
            for handler in node.handlers:
                for child in handler.body:
                    self._statement(child)
        elif isinstance(node, ast.Raise) and node.exc is not None:
            self._expr(node.exc)
        # nested defs/classes are their own (non-)stages — skip

    def _bind(self, target: ast.AST, kind: str) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = kind
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, OTHER)
        # attribute/subscript stores don't rebind locals

    # ------------------------------------------------------------------ #
    def _expr(self, node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, OTHER)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, float):
                return FLOAT
            if isinstance(node.value, bool):
                return OTHER
            if isinstance(node.value, int):
                return OTHER  # int literals combine with either side
            return OTHER
        if isinstance(node, ast.BinOp):
            left = self._expr(node.left)
            right = self._expr(node.right)
            return self._binop_check(node, node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            return self._expr(node.operand)
        if isinstance(node, ast.Subscript):
            base = self._expr(node.value)
            return base if base in (INT, FLOAT) else OTHER
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Attribute):
            # plain attribute reads (.shape, .T) lose tracking except .T
            base = self._expr(node.value)
            if node.attr == "T" and base == INT:
                return INT
            return OTHER
        if isinstance(node, ast.IfExp):
            self._expr(node.test)
            body = self._expr(node.body)
            orelse = self._expr(node.orelse)
            return body if body == orelse else OTHER
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._expr(element)
            return OTHER
        if isinstance(node, ast.Compare):
            self._expr(node.left)
            for comparator in node.comparators:
                self._expr(comparator)
            return OTHER
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._expr(value)
            return OTHER
        if isinstance(node, ast.Starred):
            return self._expr(node.value)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                             ast.DictComp, ast.Lambda)):
            return OTHER
        if isinstance(node, ast.JoinedStr):
            return OTHER
        if isinstance(node, ast.Slice):
            return OTHER
        return OTHER

    def _binop_check(self, node: ast.AST, op: ast.operator,
                     left: str, right: str) -> str:
        if isinstance(op, ast.Div) and INT in (left, right):
            self.violations.append(self.rule.violation(
                self.context, node,
                "true division on an integer-path value",
                hint="use // for exact integer arithmetic, or exit through "
                     "astype(np.float64) before dividing"))
            return FLOAT
        if {left, right} == {INT, FLOAT}:
            self.violations.append(self.rule.violation(
                self.context, node,
                "implicit int→float promotion in an integer stage",
                hint="make the float exit explicit: "
                     "value.astype(np.float64) at the Theorem-1 boundary"))
            return FLOAT
        if left == INT and right == INT:
            return INT
        if isinstance(op, ast.Div):
            return FLOAT
        if FLOAT in (left, right):
            return FLOAT
        if INT in (left, right):
            return INT
        return OTHER

    # ------------------------------------------------------------------ #
    def _call(self, node: ast.Call) -> str:
        # evaluate arguments first (violations inside them still surface)
        argument_kinds = [self._expr(argument) for argument in node.args]
        keyword_values = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        for kw in node.keywords:
            if kw.arg != "dtype":
                self._expr(kw.value)

        if isinstance(node.func, ast.Attribute):
            base_kind = self._expr(node.func.value)
            method = node.func.attr
            if method == "astype":
                target = node.args[0] if node.args \
                    else keyword_values.get("dtype")
                kind = _dtype_kind(target)
                if kind == "narrow-float" and base_kind == INT:
                    self.violations.append(self.rule.violation(
                        self.context, node,
                        "narrowing float cast of an integer-path value",
                        hint="cast to np.float64 — float32 loses integer "
                             "exactness above 2**24"))
                    return FLOAT
                if kind == INT:
                    return INT
                if kind in (FLOAT, "narrow-float"):
                    return FLOAT
                return OTHER
            if base_kind == INT and method in _INT_PRESERVING_METHODS:
                return INT
            dotted = dotted_name(node.func)
            if dotted is not None:
                tail = dotted.rsplit(".", 1)[-1]
                if tail in _ARRAY_CONSTRUCTORS:
                    kind = _dtype_kind(keyword_values.get("dtype"))
                    if kind == INT:
                        return INT
                    if kind in (FLOAT, "narrow-float"):
                        return FLOAT
                    # dtype-less constructor: inherits the argument dtype
                    if tail in ("asarray", "array") and argument_kinds \
                            and argument_kinds[0] in (INT, FLOAT):
                        return argument_kinds[0]
                    return OTHER
            return OTHER

        if isinstance(node.func, ast.Name):
            if node.func.id == "float":
                return FLOAT
            if node.func.id == "int":
                return OTHER  # python scalar, combines freely
        return OTHER


def _target_name(node: ast.AST) -> Optional[str]:
    return node.id if isinstance(node, ast.Name) else None
