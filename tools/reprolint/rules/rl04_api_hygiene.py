"""RL04 — API hygiene: deprecated symbols and stray artifact-version literals.

Two small-but-recurring review nits, automated:

* **Deprecated symbols.**  ``IntegerGCNInference`` survives only as a
  shim over :class:`repro.serving.FullGraphSession`; new code importing
  or referencing it keeps the deprecated surface alive.  Tests that
  deliberately pin the shim's behaviour suppress the rule inline — which
  doubles as an in-tree inventory of every remaining usage.
* **Artifact-version literals.**  ``serving/artifact.py`` owns version
  negotiation (``FORMAT_VERSION``, the ``format_version`` payload field).
  A version literal written anywhere else — a hand-rolled
  ``payload["format_version"] = 2``, a re-defined ``FORMAT_VERSION`` —
  bypasses that single point of truth and is exactly how incompatible
  artifacts get minted.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator

from tools.reprolint.core import FileContext, Rule, Violation

#: Deprecated name -> replacement hint.
DEPRECATED_SYMBOLS: Dict[str, str] = {
    "IntegerGCNInference": "export a repro.serving.QuantizedArtifact and "
                           "serve it with FullGraphSession / BlockSession",
}

#: Files allowed to define/re-export a deprecated symbol (path suffixes).
DEPRECATED_DEFINERS = ("repro/quant/inference.py", "repro/quant/__init__.py")

#: The only file allowed to own artifact-version literals.
VERSION_OWNER = "repro/serving/artifact.py"
VERSION_FIELD = "format_version"
VERSION_CONSTANT = "FORMAT_VERSION"


def _is_under(path: str, suffixes) -> bool:
    normalised = path.replace("\\", "/")
    return any(normalised.endswith(suffix) for suffix in suffixes)


class ApiHygieneRule(Rule):
    rule_id = "RL04"
    name = "api-hygiene"
    hint = ""

    def check(self, context: FileContext) -> Iterable[Violation]:
        path = str(context.path)
        if not _is_under(path, DEPRECATED_DEFINERS):
            yield from self._check_deprecated(context)
        if not _is_under(path, (VERSION_OWNER,)):
            yield from self._check_version_literals(context)

    # ------------------------------------------------------------------ #
    def _check_deprecated(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom):
                for name in node.names:
                    if name.name in DEPRECATED_SYMBOLS:
                        yield self.violation(
                            context, node,
                            f"import of deprecated symbol {name.name}",
                            hint=DEPRECATED_SYMBOLS[name.name])
            elif isinstance(node, ast.Attribute) \
                    and node.attr in DEPRECATED_SYMBOLS:
                yield self.violation(
                    context, node,
                    f"use of deprecated symbol {node.attr}",
                    hint=DEPRECATED_SYMBOLS[node.attr])
            elif isinstance(node, ast.Name) and node.id in DEPRECATED_SYMBOLS \
                    and isinstance(node.ctx, ast.Load):
                yield self.violation(
                    context, node,
                    f"use of deprecated symbol {node.id}",
                    hint=DEPRECATED_SYMBOLS[node.id])

    # ------------------------------------------------------------------ #
    def _check_version_literals(self, context: FileContext
                                ) -> Iterator[Violation]:
        owner_hint = (f"artifact versions are negotiated only in "
                      f"src/{VERSION_OWNER}; import its constants instead "
                      f"of writing literals")
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) \
                            and target.id == VERSION_CONSTANT:
                        yield self.violation(
                            context, node,
                            f"re-definition of {VERSION_CONSTANT} outside "
                            f"the artifact module", hint=owner_hint)
                    elif _subscript_key_is(target, VERSION_FIELD):
                        yield self.violation(
                            context, node,
                            f"write to the {VERSION_FIELD!r} payload field "
                            f"outside the artifact module", hint=owner_hint)
            elif isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if isinstance(key, ast.Constant) \
                            and key.value == VERSION_FIELD \
                            and isinstance(value, ast.Constant) \
                            and isinstance(value.value, int):
                        yield self.violation(
                            context, key if key is not None else node,
                            f"literal {VERSION_FIELD!r} version in a dict "
                            f"outside the artifact module", hint=owner_hint)


def _subscript_key_is(node: ast.AST, field: str) -> bool:
    return (isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == field)
