"""Rule registry.  Adding a rule = one module + one entry here.

Each module defines a :class:`~tools.reprolint.core.Rule` subclass; the
registry order is the report order within a line.  See
``docs/static-analysis.md`` ("Adding a rule") for the authoring guide.
"""

from tools.reprolint.rules.rl01_determinism import DeterminismRule
from tools.reprolint.rules.rl02_integer_purity import IntegerPurityRule
from tools.reprolint.rules.rl03_locks import LockDisciplineRule
from tools.reprolint.rules.rl04_api_hygiene import ApiHygieneRule
from tools.reprolint.rules.rl05_cache_keys import CacheKeyVersionRule

ALL_RULES = (
    DeterminismRule(),
    IntegerPurityRule(),
    LockDisciplineRule(),
    ApiHygieneRule(),
    CacheKeyVersionRule(),
)

RULES_BY_ID = {rule.rule_id: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "ApiHygieneRule",
    "CacheKeyVersionRule",
    "DeterminismRule",
    "IntegerPurityRule",
    "LockDisciplineRule",
]
