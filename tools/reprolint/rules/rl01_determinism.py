"""RL01 — determinism: ban global-state RNG and wall-clock seeding.

Bit-identical replay is the house invariant: every sample is a pure
function of ``(seed, rng-epoch, hop, node, edge-position)`` through the
counter-based SplitMix64 keys, and everything else draws from an
explicitly seeded, explicitly threaded ``numpy.random.Generator``.  A
single ``np.random.rand()`` (global state), ``random.shuffle()`` (global
state), or ``default_rng(time.time())`` (wall-clock seed) breaks replay in
a way the parity matrix only catches probabilistically — this rule bans
the whole class statically.

Banned:

* module-level ``numpy.random`` functions (``np.random.rand``,
  ``np.random.seed``, ``np.random.shuffle`` …).  Constructing explicit
  generators stays legal: ``np.random.default_rng``,
  ``np.random.Generator``, ``np.random.SeedSequence`` and the bit
  generators.
* stdlib ``random`` module functions (``random.random``,
  ``random.choice`` …).  ``random.Random(seed)`` / ``random.SystemRandom``
  instances are explicit objects and stay legal.
* seeding anything from the wall clock or the OS entropy pool:
  ``time.time`` / ``time.time_ns`` / ``datetime.now`` / ``os.urandom``
  inside a ``default_rng(...)`` / ``random.Random(...)`` call or a
  ``seed=`` keyword.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.reprolint.core import FileContext, Rule, Violation, import_aliases, resolve_name

#: ``numpy.random`` attributes that construct *explicit* generators.
ALLOWED_NP_RANDOM = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

#: stdlib ``random`` attributes that construct explicit generator objects.
ALLOWED_STDLIB_RANDOM = {"Random", "SystemRandom"}

#: Calls whose result must never seed an RNG (wall clock / entropy pool).
NONDETERMINISTIC_SOURCES = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.date.today",
    "os.urandom", "uuid.uuid4", "secrets.token_bytes", "secrets.randbits",
}

#: Call targets whose arguments are RNG seeds.
SEED_SINKS = {"numpy.random.default_rng", "numpy.random.seed",
              "random.Random", "random.seed", "numpy.random.SeedSequence"}


class DeterminismRule(Rule):
    rule_id = "RL01"
    name = "determinism"
    hint = ("thread an explicitly seeded np.random.default_rng(seed) (or the "
            "sampler's counter-based keys) instead of global RNG state")

    def check(self, context: FileContext) -> Iterable[Violation]:
        aliases = import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(context, node)
            elif isinstance(node, ast.Call):
                name = resolve_name(node.func, aliases)
                if name is None:
                    continue
                yield from self._check_call(context, node, name)
                yield from self._check_seed_args(context, node, name, aliases)

    # -------------------------------------------------------------- #
    def _check_import_from(self, context: FileContext,
                           node: ast.ImportFrom) -> Iterator[Violation]:
        if node.module == "numpy.random":
            for name in node.names:
                if name.name not in ALLOWED_NP_RANDOM and name.name != "*":
                    yield self.violation(
                        context, node,
                        f"import of global-state RNG function "
                        f"numpy.random.{name.name}")
        elif node.module == "random":
            for name in node.names:
                if name.name not in ALLOWED_STDLIB_RANDOM:
                    yield self.violation(
                        context, node,
                        f"import of global-state RNG function "
                        f"random.{name.name}")

    def _check_call(self, context: FileContext, node: ast.Call,
                    name: str) -> Iterator[Violation]:
        if name.startswith("numpy.random."):
            attr = name[len("numpy.random."):]
            if "." not in attr and attr not in ALLOWED_NP_RANDOM:
                yield self.violation(
                    context, node,
                    f"call to global-state RNG numpy.random.{attr}()")
        elif name.startswith("random."):
            attr = name[len("random."):]
            if "." not in attr and attr not in ALLOWED_STDLIB_RANDOM:
                yield self.violation(
                    context, node,
                    f"call to global-state RNG random.{attr}()")

    def _check_seed_args(self, context: FileContext, node: ast.Call,
                         name: str, aliases: dict) -> Iterator[Violation]:
        is_sink = name in SEED_SINKS
        seed_keywords = [kw.value for kw in node.keywords
                         if kw.arg in ("seed", "random_state")]
        candidates = list(node.args) + [kw.value for kw in node.keywords] \
            if is_sink else seed_keywords
        for argument in candidates:
            for sub in ast.walk(argument):
                if not isinstance(sub, ast.Call):
                    continue
                source = resolve_name(sub.func, aliases)
                if source in NONDETERMINISTIC_SOURCES:
                    yield self.violation(
                        context, sub,
                        f"RNG seeded from non-deterministic source "
                        f"{source}()",
                        hint="derive seeds from configuration, not the "
                             "wall clock or the entropy pool")
