"""RL05 — cache-key versioning: streamed caches must key on graph versions.

The streaming tier's correctness story (see :mod:`repro.streaming.versions`)
rests on one construction: every :class:`~repro.cache.BlockCache` key
carries a graph-version component — the node's row version for row-shaped
entries, the seeds' region-version tag for batch entries — so an update
makes stale entries *unreachable by key* instead of relying on eviction
races.  A key tuple built without that component reintroduces the exact
bug class scoped invalidation was designed out of: a warm entry from
before an update keeps getting served after it.

The rule flags any tuple literal whose first element is one of the cache
kind tags (``"row"`` / ``"blk"`` / ``"bat"``) unless some other element of
the tuple mentions a version-ish identifier (``*version*`` or ``*tag*`` —
the row-version counters and the region-version tag respectively).
All-constant tuples are ignored: ``("row", "blk")`` is a membership test,
not a key.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.reprolint.core import FileContext, Rule, Violation

#: First elements that mark a tuple literal as a BlockCache key.
KIND_TAGS = ("row", "blk", "bat")


def _mentions_version(node: ast.AST) -> bool:
    """True when any identifier under ``node`` looks version-carrying."""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.keyword):
            name = sub.arg
        if name and ("version" in name.lower() or "tag" in name.lower()):
            return True
    return False


class CacheKeyVersionRule(Rule):
    rule_id = "RL05"
    name = "cache-key-versions"
    hint = ("streamed graphs advance per-node versions on every update; a "
            "cache key without a version/tag component keeps serving "
            "entries from before the update — thread the RegionVersions "
            "counters (row version / region tag) into the key tuple")

    def check(self, context: FileContext) -> Iterable[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Tuple) or not node.elts:
                continue
            head = node.elts[0]
            if not (isinstance(head, ast.Constant)
                    and head.value in KIND_TAGS):
                continue
            rest = node.elts[1:]
            if not rest or all(isinstance(element, ast.Constant)
                               for element in rest):
                continue  # a membership test like ("row", "blk"), not a key
            if any(_mentions_version(element) for element in rest):
                continue
            yield self.violation(
                context, node,
                f"cache key tagged {head.value!r} has no graph-version "
                f"component")
