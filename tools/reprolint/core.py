"""reprolint's engine: file discovery, suppression parsing, rule protocol.

The suite exists because the repository's load-bearing guarantees are
*invariants of the source text*, not just of test runs: bit-identical
replay requires that no global RNG state is ever consulted, Theorem-1 hot
paths must keep their heavy accumulation in integer dtypes, and the
cache/serving locks only protect what is actually accessed under them.
Each rule turns one of those invariants into an AST check that fails the
build the moment a violating line lands, instead of a parity or
concurrency test failing probabilistically later.

Architecture (see ``docs/static-analysis.md`` for the authoring guide):

* :class:`Rule` — one named family of checks (``RL01`` …).  A rule sees a
  fully parsed :class:`FileContext` and yields :class:`Violation`\\ s.
* :class:`FileContext` — path, source, AST and the per-line comment map a
  file's suppressions are parsed from.
* :func:`analyze_paths` — walk files, run every (selected) rule, drop
  suppressed findings, return the survivors sorted for stable output.

Suppression syntax (narrowest scope that works, always rule-scoped):

* ``# reprolint: disable=RL01`` on a line suppresses the named rule(s)
  for violations reported *on that line* (comma-separate several ids).
* ``# reprolint: disable-file=RL04`` anywhere in a file suppresses the
  named rule(s) for the whole file.

An unknown rule id inside a suppression comment is itself an error
(``RL00``), so typos can never silently disable nothing.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Directories never worth walking into.
SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".ruff_cache",
             ".mypy_cache", "node_modules", ".venv", "venv"}

_SUPPRESS = re.compile(r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*"
                       r"([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule id anchored to a source location."""

    rule: str
    path: Path
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self, root: Optional[Path] = None) -> str:
        path = self.path
        if root is not None:
            try:
                path = path.relative_to(root)
            except ValueError:
                pass
        text = f"{path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class Suppressions:
    """Parsed ``# reprolint:`` comments of one file."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    whole_file: Set[str] = field(default_factory=set)
    #: (line, bad id) pairs for malformed suppression comments.
    errors: List[Tuple[int, str]] = field(default_factory=list)

    def active(self, rule: str, line: int) -> bool:
        if rule in self.whole_file:
            return True
        return rule in self.by_line.get(line, set())


@dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    path: Path
    source: str
    tree: ast.Module
    suppressions: Suppressions
    #: Trailing/own-line comments keyed by physical line number.
    comments: Dict[int, str] = field(default_factory=dict)

    def comment_on(self, line: int) -> str:
        return self.comments.get(line, "")


class Rule:
    """Base class every rule family subclasses.

    Subclasses set :attr:`rule_id` / :attr:`name` / :attr:`hint` and
    implement :meth:`check`.  ``hint`` is the generic fix suggestion the
    CLI prints under a finding; :meth:`check` may override it per
    violation.
    """

    rule_id: str = "RL00"
    name: str = "base"
    hint: str = ""

    def check(self, context: FileContext) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(self, context: FileContext, node: ast.AST, message: str,
                  hint: Optional[str] = None) -> Violation:
        return Violation(rule=self.rule_id, path=context.path,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0),
                         message=message,
                         hint=self.hint if hint is None else hint)


def _collect_comments(source: str) -> Dict[int, str]:
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass
    return comments


def parse_suppressions(comments: Dict[int, str],
                       known_rules: Set[str]) -> Suppressions:
    suppressions = Suppressions()
    for line, comment in comments.items():
        for kind, ids in _SUPPRESS.findall(comment):
            for rule_id in (part.strip() for part in ids.split(",")):
                if not rule_id:
                    continue
                if rule_id not in known_rules:
                    suppressions.errors.append((line, rule_id))
                    continue
                if kind == "disable-file":
                    suppressions.whole_file.add(rule_id)
                else:
                    suppressions.by_line.setdefault(line, set()).add(rule_id)
    return suppressions


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under the given files/directories, de-duplicated."""
    seen: Set[Path] = set()
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(path)
            continue
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in SKIP_DIRS for part in candidate.parts):
                    continue
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    files.append(candidate)
    return files


def load_context(path: Path, known_rules: Set[str]) -> FileContext:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    comments = _collect_comments(source)
    suppressions = parse_suppressions(comments, known_rules)
    return FileContext(path=path, source=source, tree=tree,
                       suppressions=suppressions, comments=comments)


def analyze_source(source: str, rules: Sequence[Rule],
                   path: Path = Path("<snippet>")) -> List[Violation]:
    """Run rules over in-memory source — the unit-test entry point."""
    known = {rule.rule_id for rule in rules}
    tree = ast.parse(source, filename=str(path))
    comments = _collect_comments(source)
    context = FileContext(path=path, source=source, tree=tree,
                          suppressions=parse_suppressions(comments, known),
                          comments=comments)
    return _check_context(context, rules)


def _check_context(context: FileContext,
                   rules: Sequence[Rule]) -> List[Violation]:
    violations: List[Violation] = []
    for line, bad_id in context.suppressions.errors:
        violations.append(Violation(
            rule="RL00", path=context.path, line=line, col=0,
            message=f"suppression names unknown rule {bad_id!r}",
            hint="valid ids: " + ", ".join(sorted(r.rule_id for r in rules))))
    for rule in rules:
        for violation in rule.check(context):
            if not context.suppressions.active(violation.rule, violation.line):
                violations.append(violation)
    violations.sort(key=lambda v: (str(v.path), v.line, v.col, v.rule))
    return violations


def analyze_paths(paths: Sequence[Path], rules: Sequence[Rule]
                  ) -> Tuple[List[Violation], int]:
    """Run rules over files/directories; returns (violations, files seen)."""
    known = {rule.rule_id for rule in rules}
    violations: List[Violation] = []
    files = collect_files(paths)
    for path in files:
        try:
            context = load_context(path, known)
        except SyntaxError as error:
            violations.append(Violation(
                rule="RL00", path=path, line=error.lineno or 1, col=0,
                message=f"file does not parse: {error.msg}"))
            continue
        violations.extend(_check_context(context, rules))
    violations.sort(key=lambda v: (str(v.path), v.line, v.col, v.rule))
    return violations, len(files)


# --------------------------------------------------------------------- #
# shared AST helpers
# --------------------------------------------------------------------- #
def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted module/symbol they were bound to.

    ``import numpy as np`` → ``{"np": "numpy"}``; ``from numpy import
    random`` → ``{"random": "numpy.random"}``; ``from numpy.random import
    rand as r`` → ``{"r": "numpy.random.rand"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".", 1)[0]
                aliases[local] = name.name if name.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = \
                    f"{node.module}.{name.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Fully-qualified dotted name of an expression, through import aliases."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    root = aliases.get(head, head)
    return f"{root}.{rest}" if rest else root
