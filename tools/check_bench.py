#!/usr/bin/env python
"""Perf-regression gate over ``BENCH_*.json`` trajectory files.

Compares a freshly measured *candidate* trajectory against the committed
*baseline* and exits non-zero when any gated metric regressed beyond the
tolerance band.  Used by CI's ``perf`` job (smoke-mode load harness →
schema check → this comparator) and locally by perf PRs::

    python tools/check_bench.py --baseline BENCH_PR6.json \
        --candidate bench_candidate.json --tolerance 0.5

Direction and slack come from the metric *name*
(:func:`repro.loadgen.report.metric_direction` /
:func:`~repro.loadgen.report.metric_slack`):

* lower-is-better (``*_ms``, ``*_mb``, ``*_gbitops``,
  ``slo_violation_rate``) regresses when
  ``candidate > baseline * (1 + tolerance) + slack``;
* higher-is-better (``*_qps``, ``*hit_rate``) regresses when
  ``candidate < baseline / (1 + tolerance) - slack``;
* everything else (request counts, config echoes like ``deadline_ms`` and
  ``offered_qps``) is informational.

Only result names present in **both** files are compared, so a baseline
may carry the whole perf surface while CI re-measures just the smoke
subset — but if the overlap gates *nothing*, the run fails (exit 3): a
vacuous gate is rot, not success.

Exit codes: 0 ok, 1 regression, 2 schema/IO error, 3 vacuous comparison.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.loadgen.report import (  # noqa: E402 - path bootstrap above
    metric_direction,
    metric_slack,
    validate_payload,
)


def _load(path: str) -> Optional[dict]:
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"ERROR {path}: {error}", file=sys.stderr)
        return None
    errors = validate_payload(payload)
    for error in errors:
        print(f"SCHEMA {path}: {error}", file=sys.stderr)
    return None if errors else payload


def compare(baseline: dict, candidate: dict,
            tolerance: float) -> "tuple[List[str], int]":
    """(regression messages, number of gated metrics checked)."""
    regressions: List[str] = []
    checked = 0
    shared = sorted(set(baseline["results"]) & set(candidate["results"]))
    for name in shared:
        base_metrics = baseline["results"][name]["metrics"]
        cand_metrics = candidate["results"][name]["metrics"]
        for metric in sorted(set(base_metrics) & set(cand_metrics)):
            direction = metric_direction(metric)
            if direction is None:
                continue
            base = float(base_metrics[metric])
            cand = float(cand_metrics[metric])
            slack = metric_slack(metric)
            if direction == "lower":
                limit = base * (1.0 + tolerance) + slack
                regressed = cand > limit
                arrow = "<="
            else:
                limit = base / (1.0 + tolerance) - slack
                regressed = cand < limit
                arrow = ">="
            checked += 1
            verdict = "REGRESSION" if regressed else "ok"
            line = (f"{verdict:>10}  {name}.{metric}: candidate {cand:.4f} "
                    f"{arrow} limit {limit:.4f} (baseline {base:.4f})")
            print(line)
            if regressed:
                regressions.append(line.strip())
    return regressions, checked


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed trajectory file (e.g. BENCH_PR6.json)")
    parser.add_argument("--candidate", required=True,
                        help="freshly measured trajectory file")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="relative tolerance band (default: 0.5 = 50%%; "
                             "CI uses a wider band to absorb runner "
                             "variance)")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        print("ERROR tolerance must be non-negative", file=sys.stderr)
        return 2

    baseline = _load(args.baseline)
    candidate = _load(args.candidate)
    if baseline is None or candidate is None:
        return 2

    regressions, checked = compare(baseline, candidate, args.tolerance)
    if checked == 0:
        print("ERROR no overlapping gated metrics between baseline and "
              "candidate — the gate checked nothing", file=sys.stderr)
        return 3
    if regressions:
        print(f"\nFAIL {len(regressions)} of {checked} gated metrics "
              f"regressed beyond the {args.tolerance:.0%} band:",
              file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nOK {checked} gated metrics within the "
          f"{args.tolerance:.0%} tolerance band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
