#!/usr/bin/env python
"""Docs gate: markdown lint + executable-snippet smoke for ``docs/`` + README.

Two passes, no third-party dependencies (runs in CI and locally via
``python tools/check_docs.py``):

1. **Lint** every markdown file in ``docs/`` plus ``README.md``: code
   fences must be balanced and carry an info string (so the snippet runner
   knows what is executable), exactly one H1 per file, heading levels never
   skip, and every relative link target must exist in the repository.
2. **Execute** the ``python`` code fences of the files listed in
   ``EXECUTABLE_DOCS``, in order, in one shared namespace per file — the
   same pattern as the examples CI step, so the documented serving
   walkthrough is guaranteed to run against the current code.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
LINTED_FILES = sorted(DOCS_DIR.glob("*.md")) + [REPO_ROOT / "README.md"]
#: Docs whose ``python`` fences form one runnable, ordered walkthrough.
EXECUTABLE_DOCS = [DOCS_DIR / "serving.md", DOCS_DIR / "sharding.md",
                   DOCS_DIR / "kernels.md", DOCS_DIR / "benchmarks.md",
                   DOCS_DIR / "streaming.md",
                   DOCS_DIR / "static-analysis.md"]

_FENCE = re.compile(r"^(```+)\s*(\S*)\s*$")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+\S")


def _fences(text: str) -> List[Tuple[int, str, str]]:
    """(start_line, info_string, body) of every code fence in ``text``."""
    fences = []
    info = None
    start = 0
    body: List[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        match = _FENCE.match(line)
        if match and info is None:
            info, start, body = match.group(2), number, []
        elif match:
            fences.append((start, info, "\n".join(body)))
            info = None
        elif info is not None:
            body.append(line)
    if info is not None:
        raise ValueError(f"unbalanced code fence opened at line {start}")
    return fences


def lint(path: Path) -> List[str]:
    errors: List[str] = []
    text = path.read_text()
    try:
        fences = _fences(text)
    except ValueError as error:
        return [str(error)]
    for line, info, _ in fences:
        if not info:
            errors.append(f"line {line}: code fence without a language "
                          f"(use ```text for plain blocks)")

    # strip fence bodies before heading/link checks
    stripped: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            stripped.append(line)

    levels = [len(match.group(1)) for line in stripped
              if (match := _HEADING.match(line))]
    if levels.count(1) != 1:
        errors.append(f"expected exactly one H1, found {levels.count(1)}")
    for previous, current in zip(levels, levels[1:]):
        if current > previous + 1:
            errors.append(f"heading level jumps from h{previous} to h{current}")

    for line_number, line in enumerate(stripped, start=1):
        for target in _LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if relative and not (path.parent / relative).exists():
                errors.append(f"broken link target {target!r}")
    return errors


def run_snippets(path: Path) -> int:
    """Execute the ``python`` fences of one doc in a shared namespace."""
    namespace: dict = {"__name__": f"docs_snippet:{path.name}"}
    executed = 0
    for line, info, body in _fences(path.read_text()):
        if info != "python":
            continue
        try:
            exec(compile(body, f"{path}:{line}", "exec"), namespace)
        except Exception as error:  # noqa: BLE001 - report and fail the gate
            raise SystemExit(
                f"FAIL {path.relative_to(REPO_ROOT)} snippet at line {line}: "
                f"{type(error).__name__}: {error}") from error
        executed += 1
    return executed


def main() -> int:
    if not DOCS_DIR.is_dir():
        print("docs/ directory missing", file=sys.stderr)
        return 1
    failures = 0
    for path in LINTED_FILES:
        errors = lint(path)
        for error in errors:
            print(f"LINT {path.relative_to(REPO_ROOT)}: {error}",
                  file=sys.stderr)
        failures += len(errors)
    if failures:
        return 1
    for path in EXECUTABLE_DOCS:
        executed = run_snippets(path)
        print(f"OK {path.relative_to(REPO_ROOT)}: lint clean, "
              f"{executed} python snippets executed")
    others = [p for p in LINTED_FILES if p not in EXECUTABLE_DOCS]
    print(f"OK {len(others)} further files lint clean: "
          + ", ".join(str(p.relative_to(REPO_ROOT)) for p in others))
    return 0


if __name__ == "__main__":
    sys.exit(main())
