"""Table 3: GCN node classification — FP32 vs DQ vs A²Q vs MixQ(λ).

Shape reproduced (paper Table 3): quantized methods cut BitOPs by roughly
4-10x; MixQ(λ=-ε) stays close to FP32 accuracy; raising λ lowers both the
average bit-width and the BitOPs.
"""

from _bench_utils import run_once

from repro.experiments.common import format_table
from repro.experiments.node_tables import table3_node_classification
from repro.experiments.reference import PAPER_TABLE3


def test_table3_node_classification_gcn(benchmark, light_scale):
    results = run_once(benchmark, table3_node_classification,
                       datasets=("cora", "citeseer"), scale=light_scale)

    for dataset, rows in results.items():
        print("\n" + format_table(f"Table 3 — {dataset} (paper: "
                                  f"{PAPER_TABLE3[dataset]['FP32']['accuracy']}% FP32)", rows))
        by_method = {row.method: row for row in rows}
        fp32 = by_method["FP32"]
        mixq_eps = by_method["MixQ(λ=-ε)"]
        mixq_strong = by_method["MixQ(λ=1)"]

        # Compression shape: every MixQ variant costs fewer BitOPs than FP32,
        # and the paper's ~5.5x average reduction is met by at least one setting.
        assert mixq_eps.giga_bit_operations < fp32.giga_bit_operations
        assert mixq_strong.giga_bit_operations < fp32.giga_bit_operations
        assert fp32.giga_bit_operations / mixq_strong.giga_bit_operations >= 3.0

        # Bit-width ordering: a larger lambda never selects wider bit-widths.
        assert mixq_strong.bits <= mixq_eps.bits + 1e-6
        assert mixq_eps.bits < 32

        # Accuracy shape: the accuracy-first configuration stays within a
        # modest margin of FP32 and clearly above chance.
        assert mixq_eps.mean_accuracy > 0.35
        assert mixq_eps.mean_accuracy >= fp32.mean_accuracy - 0.15
