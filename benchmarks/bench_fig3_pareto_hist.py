"""Figure 3: per-component bit-width histograms along the Figure 2 Pareto front.

Shape reproduced: the Pareto-optimal assignments do not collapse onto a
single uniform bit-width — different components prefer different widths,
which is the paper's argument that the selection problem is non-trivial.
"""

from _bench_utils import run_once

from repro.experiments.figures import figure2_bitwidth_scatter, figure3_pareto_histograms


def _run(scale):
    figure2 = figure2_bitwidth_scatter(num_samples=14, scale=scale, seed=1)
    return figure2, figure3_pareto_histograms(figure2)


def test_figure3_pareto_histograms(benchmark, scale):
    figure2, histograms = run_once(benchmark, _run, scale)

    print("\nFigure 3 — bit-width histograms on the Pareto front")
    print(f"Pareto-front size: {len(figure2.pareto_indices)}")
    for component, counts in histograms.items():
        print(f"{component:<24} " + "  ".join(f"{bits}b:{count}"
                                              for bits, count in sorted(counts.items())))

    assert len(histograms) == 9  # the paper's nine two-layer GCN components
    total_per_component = {name: sum(counts.values()) for name, counts in histograms.items()}
    assert len(set(total_per_component.values())) == 1  # every component counted once per point
    # The selected bit-widths are not identical across all components/points:
    distinct_choices = {bits for counts in histograms.values()
                        for bits, count in counts.items() if count > 0}
    assert len(distinct_choices) >= 2
