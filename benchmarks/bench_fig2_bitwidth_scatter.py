"""Figure 2: accuracy vs average bit-width over sampled bit-width combinations.

Shape reproduced: the sampled combinations span a wide accuracy range at
every average bit-width, a non-trivial Pareto front exists, and some
quantized configurations approach (or beat) the FP32 reference — the
motivation for searching instead of picking uniform widths.
"""

from _bench_utils import run_once

from repro.experiments.figures import figure2_bitwidth_scatter


def test_figure2_bitwidth_scatter(benchmark, scale):
    result = run_once(benchmark, figure2_bitwidth_scatter, num_samples=12, scale=scale)

    print("\nFigure 2 — accuracy vs average bit-width (two-layer GCN, B={2,4,8})")
    print(f"FP32 reference accuracy: {result.fp32_accuracy:.3f}")
    print(f"{'avg bits':>9} {'accuracy':>9} {'pareto':>7}")
    for index, (bits, accuracy) in enumerate(result.points):
        marker = "*" if index in result.pareto_indices else ""
        print(f"{bits:>9.2f} {accuracy:>9.3f} {marker:>7}")

    assert len(result.points) == 12
    bit_values = [bits for bits, _ in result.points]
    accuracies = [accuracy for _, accuracy in result.points]
    # The sample covers a range of average bit-widths within [2, 8].
    assert min(bit_values) >= 2.0 and max(bit_values) <= 8.0
    assert max(bit_values) - min(bit_values) > 0.5
    # Accuracy varies substantially across combinations (the paper's point).
    assert max(accuracies) - min(accuracies) > 0.05
    # The Pareto front is non-trivial and the best sampled configuration gets
    # within a reasonable margin of the FP32 reference.
    assert 1 <= len(result.pareto_indices) <= len(result.points)
    assert max(accuracies) >= result.fp32_accuracy - 0.15
