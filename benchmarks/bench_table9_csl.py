"""Table 9: CSL synthetic dataset — INT2 collapses, INT4 recovers, MixQ in between.

Shape reproduced from the paper: uniform INT2 quantization destroys the
model (24% vs 99% FP32), INT4 is close to FP32, and MixQ reaches INT4-level
accuracy with a smaller average bit-width.
"""

from _bench_utils import run_once

from repro.experiments.graph_tables import table9_csl
from repro.experiments.common import format_table
from repro.experiments.reference import PAPER_TABLE9


def test_table9_csl(benchmark, light_scale):
    from dataclasses import replace

    scale = replace(light_scale, graph_train_epochs=max(light_scale.graph_train_epochs, 150),
                    hidden_features=max(light_scale.hidden_features, 32))
    rows = run_once(benchmark, table9_csl, scale=scale, num_layers=3,
                    positional_encoding_dim=16, copies_per_class=6)
    print("\n" + format_table("Table 9 — CSL", rows))
    print(f"paper reference: {PAPER_TABLE9}")

    by_method = {row.method: row for row in rows}
    fp32 = by_method["FP32"]
    int2 = by_method["QAT - INT2"]
    int4 = by_method["QAT - INT4"]
    mixq = by_method["MixQ(λ=-ε)"]

    # INT4 recovers at least as much of the FP32 accuracy as INT2 (the CSL
    # log2(n)-bits argument of the paper), modulo fold noise.
    assert int4.mean_accuracy >= int2.mean_accuracy - 0.05
    assert fp32.mean_accuracy >= int2.mean_accuracy - 0.05
    # FP32 clearly learns the task (above the 10% chance level).
    assert fp32.mean_accuracy > 0.2
    # MixQ selects a mixed precision strictly inside the {2, 4} range and is
    # not worse than uniform INT2 beyond fold noise.
    assert 2.0 <= mixq.bits <= 4.0
    assert mixq.mean_accuracy >= int2.mean_accuracy - 0.05
