"""Table 10: random bit-width assignments vs MixQ(λ=1).

Shape reproduced: MixQ's searched assignment beats uniformly random
assignments (with or without an INT8 output constraint) while using an
average bit-width that is no larger.
"""

from _bench_utils import run_once

from repro.experiments.ablation import table10_random_vs_mixq
from repro.experiments.common import format_table
from repro.experiments.reference import PAPER_TABLE10


def test_table10_random_vs_mixq(benchmark, light_scale):
    results = run_once(benchmark, table10_random_vs_mixq, datasets=("cora",),
                       scale=light_scale, num_random=3)

    rows = results["cora"]
    print("\n" + format_table("Table 10 — random vs MixQ (Cora)", rows))
    print(f"paper reference: {PAPER_TABLE10['cora']}")

    by_method = {row.method: row for row in rows}
    random_plain = by_method["Random"]
    random_int8 = by_method["Random+INT8"]
    mixq = by_method["MixQ(λ=1)"]

    # MixQ beats the random baselines on accuracy (the paper's gap is 10-30
    # points; we require a clear margin over the plain random baseline).
    assert mixq.mean_accuracy > random_plain.mean_accuracy
    assert mixq.mean_accuracy >= random_int8.mean_accuracy - 0.05
    # ... while not spending more bits than the random assignments on average.
    assert mixq.bits <= max(random_plain.bits, random_int8.bits) + 0.5
