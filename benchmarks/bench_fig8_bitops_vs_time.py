"""Figure 8: BitOPs vs measured inference time of one message-passing layer.

Shape reproduced: across graph sizes and precisions, BitOPs and wall-clock
inference time are positively correlated on the local CPU (the paper
reports Pearson correlations of 0.59-0.95 across three hardware platforms).
"""

from _bench_utils import run_once

from repro.experiments.figures import figure8_bitops_vs_time, pearson_correlation
from repro.experiments.reference import PAPER_HEADLINES


def test_figure8_bitops_vs_inference_time(benchmark):
    points = run_once(benchmark, figure8_bitops_vs_time,
                      node_counts=(200, 500, 1000, 2000), num_features=64,
                      bit_widths=(8, 16, 32), repeats=3)

    print("\nFigure 8 — BitOPs vs inference time (local CPU)")
    print(f"{'nodes':>6} {'bits':>5} {'BitOPs':>14} {'seconds':>10}")
    for point in points:
        print(f"{point.num_nodes:>6} {point.bits:>5} {point.bit_operations:>14,.0f} "
              f"{point.inference_seconds:>10.5f}")

    correlation = pearson_correlation([p.bit_operations for p in points],
                                      [p.inference_seconds for p in points])
    print(f"Pearson correlation: {correlation:.2f} "
          f"(paper: {PAPER_HEADLINES['figure8_pearson_correlations']})")

    assert len(points) == 12
    assert all(p.inference_seconds > 0 for p in points)
    # Larger graphs always cost more BitOPs at a fixed precision.
    for bits in (8, 16, 32):
        series = [p for p in points if p.bits == bits]
        ordered = sorted(series, key=lambda p: p.num_nodes)
        assert all(a.bit_operations < b.bit_operations
                   for a, b in zip(ordered, ordered[1:]))
    # And the headline claim: BitOPs correlates positively with wall-clock time.
    assert correlation > 0.3
