"""Warm-hit-rate retention under streaming updates: scoped vs naive.

Shape reproduced: a dynamic serving graph takes a steady trickle of small
updates (edge churn, feature refreshes) while the query working set stays
popular and repetitive.  The naive reaction to an update — flush the whole
block cache, because *something* changed — throws away every warm entry on
every update and re-pays the cold-sampling cost for traffic the update
never touched.  Scoped invalidation
(:meth:`~repro.serving.BlockSession.apply_update`) bumps versions only
inside the affected receptive fields, so untouched traffic keeps hitting.

The benchmark drives the identical update/query schedule through two
cached sessions — one invalidating scoped, one flushing the whole cache
per update — and reports the steady-state hit rate of each.  Scoped must
retain a strictly higher warm hit rate (the tentpole's perf claim), while
both stay bit-identical to a fresh session on the equivalent static graph
(the tentpole's correctness claim).
"""

from __future__ import annotations

import numpy as np
from _bench_utils import emit_result, run_once

from repro.experiments.config import current_scale
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.quant.qmodules import QuantNodeClassifier, gcn_component_names, \
    uniform_assignment
from repro.serving import BlockSession, QuantizedArtifact
from repro.streaming import GraphDelta
from repro.training.trainer import train_node_classifier

FANOUT = 5
REQUEST_SEEDS = 32
CACHE_ENTRIES = 65536
EDGES_PER_UPDATE = 4


def _make_graph(num_nodes: int, seed: int = 0):
    config = SBMConfig(num_nodes=num_nodes, num_classes=8, num_features=64,
                       average_degree=8.0, train_per_class=num_nodes // 32,
                       num_val=num_nodes // 10, num_test=num_nodes // 5,
                       name=f"sbm-{num_nodes}")
    return generate_sbm_graph(config, seed=seed)


def _export_artifact(calibration_graph) -> QuantizedArtifact:
    model = QuantNodeClassifier.from_assignment(
        [(calibration_graph.num_features, 32),
         (32, calibration_graph.num_classes)],
        "gcn", uniform_assignment(gcn_component_names(2), 8),
        dropout=0.0, rng=np.random.default_rng(0))
    train_node_classifier(model, calibration_graph, epochs=2, lr=0.01)
    model.eval()
    return QuantizedArtifact.from_model(model)


def _popular_requests(num_nodes: int, num_requests: int, seed: int = 7):
    """A popular pool queried over and over — warm-cache-friendly traffic."""
    rng = np.random.default_rng(seed)
    pool = rng.choice(num_nodes, size=4 * REQUEST_SEEDS, replace=False)
    base = [np.sort(rng.choice(pool, size=REQUEST_SEEDS, replace=False))
            for _ in range(4)]
    return [base[int(index)] for index in rng.integers(0, len(base),
                                                       size=num_requests)]


def _update_schedule(num_nodes: int, num_updates: int, seed: int = 11):
    """Small feature/edge deltas, deterministic given the seed."""
    rng = np.random.default_rng(seed)
    deltas = []
    for step in range(num_updates):
        if step % 2 == 0:
            edges = rng.integers(0, num_nodes, size=(2, EDGES_PER_UPDATE))
            weights = rng.random(EDGES_PER_UPDATE).astype(np.float32) \
                + np.float32(0.5)
            deltas.append(GraphDelta(added_edges=edges,
                                     added_weights=weights))
        else:
            nodes = rng.choice(num_nodes, size=2, replace=False) \
                .astype(np.int64)
            rows = rng.random((2, 64)).astype(np.float32)
            deltas.append(GraphDelta(feature_nodes=nodes, features=rows))
    return deltas


def _hit_rate_under_updates(session, requests, deltas, *,
                            naive: bool) -> float:
    """Steady-state hit rate of the measured window, updates interleaved."""
    for nodes in requests:            # warm pass, excluded from the window
        session.predict(nodes)
    before = session.cache_stats()
    per_update = max(1, len(requests) // max(1, len(deltas)))
    position = 0
    for index, nodes in enumerate(requests):
        if position < len(deltas) and index and index % per_update == 0:
            session.apply_update(deltas[position])
            if naive:                 # whole-cache flush on every update
                session.cache.clear()
            position += 1
        session.predict(nodes)
    after = session.cache_stats()
    lookups = after.lookups - before.lookups
    hits = after.hits - before.hits
    return hits / lookups if lookups else 0.0


def _sweep():
    quick = current_scale().name == "quick"
    num_nodes = 2_000 if quick else 10_000
    num_requests = 24 if quick else 96
    num_updates = 6 if quick else 24
    artifact = _export_artifact(_make_graph(num_nodes))
    graph = _make_graph(num_nodes)
    requests = _popular_requests(num_nodes, num_requests)
    deltas = _update_schedule(num_nodes, num_updates)

    rates = {}
    streamed = {}
    for mode, naive in (("scoped", False), ("naive", True)):
        session = BlockSession(artifact, graph.copy(), fanouts=FANOUT,
                               batch_size=REQUEST_SEEDS,
                               cache_size=CACHE_ENTRIES)
        rates[mode] = _hit_rate_under_updates(session, requests, deltas,
                                              naive=naive)
        streamed[mode] = (session, session.predict(requests[0]))

    # correctness spot check: both streamed sessions ended at the same
    # graph and serve bitwise what a fresh static session serves
    fresh = BlockSession(artifact, streamed["scoped"][0].graph.copy(),
                         fanouts=FANOUT, batch_size=REQUEST_SEEDS)
    reference = fresh.predict(requests[0])
    exact = all(bool(np.array_equal(logits, reference))
                for _, logits in streamed.values())
    return num_nodes, num_requests, num_updates, rates, exact


def test_streaming_scoped_vs_naive_invalidation(benchmark):
    num_nodes, num_requests, num_updates, rates, exact = \
        run_once(benchmark, _sweep)

    print(f"\nstreaming warm-hit retention "
          f"({num_requests} x {REQUEST_SEEDS}-seed requests, "
          f"{num_updates} updates, fanout={FANOUT}, n={num_nodes})")
    print(f"{'invalidation':>14} {'steady hit rate':>16}")
    for mode in ("scoped", "naive"):
        print(f"{mode:>14} {rates[mode]:>16.1%}")

    # the tentpole claims, asserted: bit-identical to fresh static serving,
    # and scoped invalidation strictly retains more warm traffic
    assert exact
    assert rates["scoped"] > rates["naive"]
    assert rates["scoped"] > 0.5

    emit_result(f"streaming.n{num_nodes}", {
        "scoped_hit_rate": rates["scoped"],
        "naive_hit_rate": rates["naive"],
        "retention_gain_hit_rate": rates["scoped"] - rates["naive"],
    }, meta={"fanout": FANOUT, "requests": num_requests,
             "request_seeds": REQUEST_SEEDS, "updates": num_updates,
             "cache_entries": CACHE_ENTRIES,
             "edges_per_update": EDGES_PER_UPDATE})
