"""Design-choice ablations called out in DESIGN.md.

Three ablations, each asserting only that both variants train to a sane
state (they are diagnostics, not paper tables):

* quantizer range estimation: EMA min/max vs percentile observers;
* skipping the aggregation-output quantizer between stacked layers
  (the S_y = 1, Z_y = 0 simplification discussed below Theorem 1);
* penalty-gradient routing: joint objective vs the Algorithm-1-literal
  decoupled update.
"""

from _bench_utils import run_once

from repro.experiments.ablation import (
    ablation_output_quantizer,
    ablation_penalty_routing,
    ablation_quantizer_ranges,
)
from repro.experiments.common import format_table


def test_ablation_quantizer_ranges(benchmark, light_scale):
    rows = run_once(benchmark, ablation_quantizer_ranges, scale=light_scale)
    print("\n" + format_table("Ablation — observer ranges (uniform INT4 GCN)", rows))
    assert {row.method for row in rows} == {"EMA ranges", "Percentile ranges"}
    assert all(row.mean_accuracy > 0.2 for row in rows)
    assert all(row.bits == 4.0 for row in rows)


def test_ablation_output_quantizer(benchmark, light_scale):
    rows = run_once(benchmark, ablation_output_quantizer, scale=light_scale)
    print("\n" + format_table("Ablation — quantized vs FP32 layer output", rows))
    by_method = {row.method: row for row in rows}
    quantized = by_method["Quantized layer output"]
    skipped = by_method["FP32 layer output (S_y=1)"]
    # Skipping the intermediate output quantizer raises the average bit-width
    # but never reduces the achievable accuracy by much.
    assert skipped.bits > quantized.bits
    assert skipped.mean_accuracy >= quantized.mean_accuracy - 0.1


def test_ablation_penalty_routing(benchmark, light_scale):
    rows = run_once(benchmark, ablation_penalty_routing, scale=light_scale)
    print("\n" + format_table("Ablation — penalty gradient routing", rows))
    assert {row.method for row in rows} == {"Joint L + λC", "Decoupled (Alg. 1)"}
    assert all(2.0 <= row.bits <= 8.0 for row in rows)
    assert all(0.0 <= row.mean_accuracy <= 1.0 for row in rows)
    # The joint objective (the configuration the paper uses in practice) must
    # reach a usable accuracy; the decoupled variant is diagnostic only.
    by_method = {row.method: row for row in rows}
    assert by_method["Joint L + λC"].mean_accuracy > 0.2
