"""Attention score-plan serving: block vs full cost, parity held throughout.

Shape reproduced: the per-edge score plans (GAT) keep the block-serving
cost profile of the matrix layers — a fixed-size request costs only its
fanout-bounded receptive field however large the served graph grows, even
though every request recomputes attention scores and softmax on its edge
list — while the parity contracts survive at scale: fanout=∞ block logits
stay bit-identical to the full-graph engine, and cached serving stays
bit-identical to uncached.

The heads sweep (``test_attention_heads_scaling``) serves the same graph
through H ∈ {1, 2, 4, 8} head artifacts: under concat merge the transform
and aggregation widths are head-invariant, so BitOPs grow only through
the per-head score stage — mildly and monotonically — while fanout=∞
parity holds at every head count.

Sizes are modest at the quick scale (CI); run with ``REPRO_SCALE=standard``
for the larger sweep.
"""

from __future__ import annotations

import time

import numpy as np
from _bench_utils import emit_result, run_once

from repro.experiments.config import current_scale
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.quant.qmodules import QuantNodeClassifier, gat_component_names, \
    uniform_assignment
from repro.serving import BlockSession, FullGraphSession, QuantizedArtifact
from repro.training.trainer import train_node_classifier

REQUEST_SEEDS = 64
FANOUT = 5


def _make_graph(num_nodes: int, seed: int = 0):
    config = SBMConfig(num_nodes=num_nodes, num_classes=8, num_features=64,
                       average_degree=8.0, train_per_class=num_nodes // 32,
                       num_val=num_nodes // 10, num_test=num_nodes // 5,
                       name=f"sbm-{num_nodes}")
    return generate_sbm_graph(config, seed=seed)


def _export_artifact(calibration_graph, heads: int = 1) -> QuantizedArtifact:
    """INT8 GAT artifact calibrated on the smallest graph."""
    model = QuantNodeClassifier.from_assignment(
        [(calibration_graph.num_features, 32),
         (32, calibration_graph.num_classes)],
        "gat", uniform_assignment(gat_component_names(2), 8),
        dropout=0.0, heads=heads, rng=np.random.default_rng(0))
    train_node_classifier(model, calibration_graph, epochs=2, lr=0.01)
    model.eval()
    return QuantizedArtifact.from_model(model)


def _sweep():
    quick = current_scale().name == "quick"
    sizes = [2_000, 6_000] if quick else [10_000, 30_000]

    parity_graph = _make_graph(sizes[0])
    artifact = _export_artifact(parity_graph)
    rng = np.random.default_rng(7)

    # Parity at the calibration size: fanout=∞ block == full graph, bitwise.
    full_logits = FullGraphSession(artifact, parity_graph).predict()
    exact_logits = BlockSession(artifact, parity_graph, fanouts=None,
                                batch_size=parity_graph.num_nodes).predict()
    parity_exact = np.array_equal(exact_logits, full_logits)

    rows = []
    for num_nodes in sizes:
        graph = _make_graph(num_nodes)
        seeds = rng.choice(num_nodes, size=REQUEST_SEEDS, replace=False)

        start = time.perf_counter()
        full_run = FullGraphSession(artifact, graph).run(seeds)
        full_time = time.perf_counter() - start

        plain = BlockSession(artifact, graph, fanouts=FANOUT,
                             batch_size=REQUEST_SEEDS, seed=1)
        start = time.perf_counter()
        block_run = plain.run(seeds)
        block_time = time.perf_counter() - start

        cached = BlockSession(artifact, graph, fanouts=FANOUT,
                              batch_size=REQUEST_SEEDS, seed=1,
                              cache_size=65536)
        cached.predict(seeds)                       # cold fill
        start = time.perf_counter()
        cached_logits = cached.predict(seeds)       # warm repeat
        warm_time = time.perf_counter() - start

        rows.append((num_nodes, full_time, block_time, warm_time,
                     full_run, block_run,
                     np.array_equal(cached_logits, block_run.logits)))
    return parity_exact, rows


def test_attention_serving_scaling(benchmark):
    parity_exact, rows = run_once(benchmark, _sweep)

    print(f"\nGAT score-plan serving (one {REQUEST_SEEDS}-seed request, "
          f"fanout={FANOUT})")
    print(f"{'nodes':>8} {'full s':>8} {'block s':>8} {'warm s':>8} "
          f"{'full GBitOPs':>13} {'block GBitOPs':>14}")
    for num_nodes, full_time, block_time, warm_time, full_run, block_run, _ \
            in rows:
        print(f"{num_nodes:>8} {full_time:>8.3f} {block_time:>8.3f} "
              f"{warm_time:>8.3f} {full_run.giga_bit_operations():>13.4f} "
              f"{block_run.giga_bit_operations():>14.4f}")

    # fanout=∞ block serving is bit-identical to the full-graph engine
    assert parity_exact
    # cached repeats are bit-identical to uncached serving at every size
    assert all(cached_ok for *_, cached_ok in rows)
    for num_nodes, _, _, _, full_run, block_run, _ in rows:
        # a block request touches only its fanout-bounded receptive field
        assert block_run.num_input_nodes <= REQUEST_SEEDS * (FANOUT + 1) ** 2
        assert block_run.num_input_nodes < num_nodes
        # the score-plan BitOPs of the request stay below the full pass
        assert block_run.bit_operations.total_bit_operations \
            < full_run.bit_operations.total_bit_operations
    # full-graph request cost grows with the graph, block cost does not
    full_ops = [row[4].bit_operations.total_bit_operations for row in rows]
    block_ops = [row[5].bit_operations.total_bit_operations for row in rows]
    assert full_ops[-1] > full_ops[0]
    assert block_ops[-1] < 2 * block_ops[0]

    for num_nodes, full_time, block_time, warm_time, full_run, block_run, _ \
            in rows:
        emit_result(f"attention_serving.n{num_nodes}", {
            "full_ms": full_time * 1e3, "block_ms": block_time * 1e3,
            "warm_ms": warm_time * 1e3,
            "full_gbitops": full_run.giga_bit_operations(),
            "block_gbitops": block_run.giga_bit_operations(),
        }, meta={"fanout": FANOUT, "request_seeds": REQUEST_SEEDS})


HEAD_COUNTS = (1, 2, 4, 8)


def _heads_sweep():
    quick = current_scale().name == "quick"
    graph = _make_graph(2_000 if quick else 10_000)
    rng = np.random.default_rng(11)
    seeds = rng.choice(graph.num_nodes, size=REQUEST_SEEDS, replace=False)

    rows = []
    for heads in HEAD_COUNTS:
        artifact = _export_artifact(graph, heads=heads)
        full = FullGraphSession(artifact, graph)
        session = BlockSession(artifact, graph, fanouts=FANOUT,
                               batch_size=REQUEST_SEEDS, seed=1)
        start = time.perf_counter()
        run = session.run(seeds)
        latency = time.perf_counter() - start
        exact = BlockSession(artifact, graph, fanouts=None,
                             batch_size=graph.num_nodes).predict()
        parity = np.array_equal(exact, full.predict())
        rows.append((heads, latency, run,
                     full.bit_operations().total_bit_operations, parity))
    return rows


def test_attention_heads_scaling(benchmark):
    rows = run_once(benchmark, _heads_sweep)

    print(f"\nGAT heads sweep (one {REQUEST_SEEDS}-seed request, "
          f"fanout={FANOUT}, concat merge — width fixed, scores per head)")
    print(f"{'heads':>6} {'latency ms':>11} {'req GBitOPs':>12} "
          f"{'full GBitOPs':>13}")
    for heads, latency, run, full_ops, _ in rows:
        print(f"{heads:>6} {latency * 1e3:>11.2f} "
              f"{run.giga_bit_operations():>12.4f} {full_ops / 1e9:>13.4f}")

    # fanout=∞ block == full-graph, bit-identical, at every head count
    assert all(parity for *_, parity in rows)
    # the per-head score stage makes cost strictly monotone in heads...
    request_ops = [run.bit_operations.total_bit_operations
                   for _, _, run, _, _ in rows]
    full_ops = [ops for *_, ops, _ in rows]
    assert request_ops == sorted(request_ops) and request_ops[-1] > request_ops[0]
    assert full_ops == sorted(full_ops) and full_ops[-1] > full_ops[0]
    # ...but under concat merge the transform/aggregate widths are head-
    # invariant, so 8 heads stay well below twice the single-head cost
    assert request_ops[-1] < 2 * request_ops[0]

    for heads, latency, run, _, _ in rows:
        emit_result(f"attention_heads.h{heads}", {
            "latency_ms": latency * 1e3,
            "request_gbitops": run.giga_bit_operations(),
        }, meta={"fanout": FANOUT, "request_seeds": REQUEST_SEEDS})
