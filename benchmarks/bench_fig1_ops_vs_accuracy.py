"""Figure 1: accuracy vs number of operations across GNN layer families and depths.

Shape reproduced: a positive Spearman rank correlation between operation
count and accuracy across architectures (the paper reports 0.64), with
deeper models not uniformly better.
"""

from _bench_utils import run_once

from repro.experiments.figures import figure1_operations_vs_accuracy, spearman_rank_correlation
from repro.experiments.reference import PAPER_HEADLINES


def test_figure1_operations_vs_accuracy(benchmark, scale):
    points = run_once(benchmark, figure1_operations_vs_accuracy,
                      layer_types=("gcn", "gat", "gin", "sage", "tag", "transformer"),
                      depths=(1, 2, 3), scale=scale)

    print("\nFigure 1 — operations vs accuracy (Cora stand-in)")
    print(f"{'layer':<12} {'depth':>5} {'operations':>14} {'accuracy':>9} {'params':>9}")
    for point in points:
        print(f"{point.layer_type:<12} {point.num_layers:>5} {point.operations:>14,} "
              f"{point.accuracy:>9.3f} {point.num_parameters:>9,}")

    correlation = spearman_rank_correlation([p.operations for p in points],
                                            [p.accuracy for p in points])
    print(f"Spearman rank correlation: {correlation:.2f} "
          f"(paper: {PAPER_HEADLINES['figure1_spearman_correlation']})")

    assert len(points) == 18
    assert all(p.operations > 0 and 0.0 <= p.accuracy <= 1.0 for p in points)
    # All six families produce usable classifiers (above chance for 7 classes).
    assert all(p.accuracy > 1.0 / 7.0 for p in points if p.num_layers == 2)
    # Deeper/larger models span a wide range of operation counts.
    operations = [p.operations for p in points]
    assert max(operations) > 2 * min(operations)
