"""Figure 9: effect of the penalty weight lambda on average bit-width and accuracy.

Shape reproduced: larger lambda values select smaller average bit-widths
(Figure 9a) at the cost of a modest accuracy reduction, while negative /
tiny lambda values stay near the top of the bit range and close to FP32
accuracy (Figure 9b).
"""

import numpy as np
from _bench_utils import run_once

from repro.experiments.figures import figure9_lambda_sweep


def test_figure9_lambda_sweep(benchmark, light_scale):
    points = run_once(benchmark, figure9_lambda_sweep,
                      lambdas=(-0.1, 0.0, 0.1, 1.0), scale=light_scale,
                      num_seeds=light_scale.num_seeds)

    print("\nFigure 9 — effect of lambda on average bit-width and accuracy")
    print(f"{'lambda':>8} {'avg bits':>9} {'accuracy':>9}")
    for point in points:
        print(f"{point.lambda_value:>8.3g} {point.average_bits:>9.2f} {point.accuracy:>9.3f}")

    by_lambda = {point.lambda_value: point for point in points}
    # Monotone trend in the aggregate: the largest lambda uses no more bits
    # than the negative-lambda setting.
    assert by_lambda[1.0].average_bits <= by_lambda[-0.1].average_bits + 1e-6
    # All selections stay inside the search space.
    assert all(2.0 <= point.average_bits <= 8.0 for point in points)
    # Accuracy of the accuracy-first settings stays above the strongly
    # compressed one minus noise margin (shape of Figure 9b).
    lenient = max(by_lambda[-0.1].accuracy, by_lambda[0.0].accuracy)
    assert lenient >= by_lambda[1.0].accuracy - 0.10
    # Correlation between lambda and bits is non-positive overall.
    lambdas = [point.lambda_value for point in points]
    bits = [point.average_bits for point in points]
    assert np.corrcoef(lambdas, bits)[0, 1] <= 0.3
