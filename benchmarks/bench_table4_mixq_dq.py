"""Table 4: native MixQ quantizers vs MixQ combined with Degree-Quant (Cora).

Shape reproduced: the DQ-backed variant matches or improves the native
variant at the same lambda (the paper reports +0.2 to +3.6 points) while
keeping the BitOPs budget essentially unchanged.
"""

from _bench_utils import run_once

from repro.experiments.common import format_table
from repro.experiments.node_tables import table4_mixq_with_dq
from repro.experiments.reference import PAPER_TABLE4


def test_table4_mixq_with_degree_quant(benchmark, light_scale):
    rows = run_once(benchmark, table4_mixq_with_dq, dataset="cora", scale=light_scale,
                    lambdas=(0.1, 1.0))
    print("\n" + format_table("Table 4 — MixQ vs MixQ + DQ (Cora)", rows))
    print(f"paper reference: {PAPER_TABLE4['MixQ(λ=0.1)']} vs "
          f"{PAPER_TABLE4['MixQ(λ=0.1) + DQ']}")

    by_method = {row.method: row for row in rows}
    gaps = []
    for lam_label in ("0.1", "1"):
        native = by_method[f"MixQ(λ={lam_label})"]
        combined = by_method[f"MixQ(λ={lam_label}) + DQ"]
        # The DQ integration stays in the same accuracy regime as the native
        # quantizers and in the same BitOPs regime (within ~2x).
        assert combined.mean_accuracy >= native.mean_accuracy - 0.18
        gaps.append(combined.mean_accuracy - native.mean_accuracy)
        ratio = combined.giga_bit_operations / max(native.giga_bit_operations, 1e-9)
        assert 0.4 <= ratio <= 2.5
        assert combined.bits < 32 and native.bits < 32
    # Averaged over the lambda settings the combination does not collapse.
    assert sum(gaps) / len(gaps) > -0.15
