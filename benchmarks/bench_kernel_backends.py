"""Kernel-backend latency on the integer serving hot path.

The backend registry (:mod:`repro.kernels`) certifies every backend
bit-identical to the ``numpy`` reference, so the only thing left to
measure is speed.  This benchmark times the two stages the ``vectorized``
backend actually rewrites on a synthetic attention-shaped workload:

* **edge aggregation** (``edge_spmm``) — scatter-add ``np.add.at`` in the
  reference vs a sort + ``np.add.reduceat`` segment reduce;
* **per-head score projection** (``gat_scores``) — a Python loop over
  heads in the reference vs one batched ``(N, H, D)`` evaluation.

Each cell is a min-of-repeats wall time; outputs are asserted bit-equal
across backends before anything is timed, so a contract break fails here
too rather than producing a fast-but-wrong number.
"""

from __future__ import annotations

import time

import numpy as np
from _bench_utils import emit_result, run_once

from repro.experiments.config import current_scale
from repro.kernels import available_backends, get_backend

HEADS = 4
HEAD_DIM = 16
REPEATS = 5
#: Stages timed per backend (name -> builder of a no-arg callable).
STAGES = ("edge_spmm", "gat_scores")


def _workload(num_nodes: int, num_edges: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    q_edge = rng.integers(0, 127, size=(num_edges, HEADS))
    qx = rng.integers(-128, 128, size=(num_nodes, HEADS, HEAD_DIM))
    transformed = rng.normal(size=(num_nodes, HEADS * HEAD_DIM))
    attention_src = rng.normal(size=(HEAD_DIM, HEADS))
    attention_dst = rng.normal(size=(HEAD_DIM, HEADS))
    return {
        "edge_spmm": (q_edge, 0.004, qx, 0.15, 3.0, src, dst, num_nodes),
        "gat_scores": (transformed, attention_src, attention_dst, src, dst,
                       HEADS, HEAD_DIM),
    }


def _time_stage(backend, stage: str, arguments) -> float:
    kernel = getattr(backend, stage)
    kernel(*arguments)                     # warm (jit / memoised segments)
    best = np.inf
    for _ in range(REPEATS):
        start = time.perf_counter()
        kernel(*arguments)
        best = min(best, time.perf_counter() - start)
    return best


def _sweep():
    quick = current_scale().name == "quick"
    num_nodes = 5_000 if quick else 20_000
    num_edges = 50_000 if quick else 400_000
    workload = _workload(num_nodes, num_edges)
    reference = get_backend("numpy")
    expected = {stage: getattr(reference, stage)(*workload[stage])
                for stage in STAGES}

    rows = []
    for name in available_backends():
        backend = get_backend(name)
        for stage in STAGES:
            # never time a backend that broke the contract
            exact = bool(np.array_equal(
                getattr(backend, stage)(*workload[stage]), expected[stage]))
            seconds = _time_stage(backend, stage, workload[stage])
            rows.append((name, stage, seconds, exact))
    return num_nodes, num_edges, rows


def test_kernel_backend_latency(benchmark):
    num_nodes, num_edges, rows = run_once(benchmark, _sweep)

    print(f"\nkernel backends on N={num_nodes}, E={num_edges}, "
          f"H={HEADS}, D={HEAD_DIM} (min of {REPEATS})")
    print(f"{'backend':>12} {'stage':>12} {'ms':>9} {'exact':>6}")
    for name, stage, seconds, exact in rows:
        print(f"{name:>12} {stage:>12} {seconds * 1e3:>9.3f} {str(exact):>6}")

    timings = {(name, stage): seconds for name, stage, seconds, _ in rows}
    assert all(exact for _, _, _, exact in rows)
    metrics = {}
    for stage in STAGES:
        numpy_ms = timings[("numpy", stage)] * 1e3
        vectorized_ms = timings[("vectorized", stage)] * 1e3
        metrics[f"numpy_{stage}_ms"] = numpy_ms
        metrics[f"vectorized_{stage}_ms"] = vectorized_ms
        metrics[f"vectorized_{stage}_speedup"] = numpy_ms / vectorized_ms
        # the acceptance criterion: the shipped fast backend beats the
        # reference on both rewritten stages
        assert vectorized_ms < numpy_ms, \
            f"vectorized {stage} slower than the reference"
    emit_result("kernel_backends", metrics,
                meta={"num_nodes": num_nodes, "num_edges": num_edges,
                      "heads": HEADS, "head_dim": HEAD_DIM,
                      "repeats": REPEATS,
                      "backends": list(available_backends())})
