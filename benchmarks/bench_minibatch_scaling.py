"""Full-batch vs. neighbor-sampled minibatch training as the graph grows.

Shape reproduced: the minibatch engine's per-epoch peak memory is bounded by
``batch_size * fanout^L`` instead of the node count, so it keeps training as
the SBM stand-in grows past the sizes the full-batch path can reasonably
touch, while full-batch cost grows with the whole graph.  Wall-time and
peak-allocation are measured with ``tracemalloc`` on one training epoch each.

Sizes are deliberately modest at the quick scale (CI); run with
``REPRO_SCALE=standard`` for the 10k-100k-node sweep of the scaling claim.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np
from _bench_utils import run_once

from repro.experiments.config import current_scale
from repro.gnn.models import build_node_model
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.training.minibatch import MinibatchTrainer
from repro.training.trainer import train_node_classifier


def _make_graph(num_nodes: int, seed: int = 0):
    config = SBMConfig(num_nodes=num_nodes, num_classes=8, num_features=64,
                       average_degree=8.0, train_per_class=num_nodes // 32,
                       num_val=num_nodes // 10, num_test=num_nodes // 5,
                       name=f"sbm-{num_nodes}")
    return generate_sbm_graph(config, seed=seed)


def _model(graph, seed: int = 0):
    return build_node_model("sage", graph.num_features, 32, graph.num_classes,
                            rng=np.random.default_rng(seed))


def _timed_peak(fn) -> tuple:
    """(wall seconds, tracemalloc peak bytes) of one call."""
    tracemalloc.start()
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak


def _sweep():
    quick = current_scale().name == "quick"
    compare_sizes = [2_000, 5_000] if quick else [10_000, 30_000]
    frontier_size = 10_000 if quick else 100_000

    rows = []
    for num_nodes in compare_sizes:
        graph = _make_graph(num_nodes)

        full_time, full_peak = _timed_peak(
            lambda: train_node_classifier(_model(graph), graph, epochs=1))

        trainer = MinibatchTrainer(_model(graph), fanouts=10, batch_size=256)
        sampler = trainer.make_sampler(graph, seed_nodes=graph.train_mask)

        def one_epoch():
            # Training steps only — exact layer-wise evaluation is shared by
            # both engines, so the comparison isolates the gradient path.
            for batch in sampler:
                trainer.model.zero_grad()
                trainer.batch_loss(batch).backward()

        mini_time, mini_peak = _timed_peak(one_epoch)
        rows.append((num_nodes, full_time, full_peak, mini_time, mini_peak))

    # The frontier size runs minibatch-only: this is the regime the
    # full-batch path cannot touch (its epoch cost keeps growing with N).
    graph = _make_graph(frontier_size)
    trainer = MinibatchTrainer(_model(graph), fanouts=10, batch_size=256)
    result = trainer.fit(graph, epochs=1)
    return rows, (frontier_size, result)


def test_minibatch_scaling(benchmark):
    rows, (frontier_size, frontier_result) = run_once(benchmark, _sweep)

    header = (f"{'nodes':>8} {'full s':>8} {'full MB':>9} "
              f"{'mini s':>8} {'mini MB':>9}")
    print("\nminibatch vs full-batch (one epoch)")
    print(header)
    for num_nodes, full_time, full_peak, mini_time, mini_peak in rows:
        print(f"{num_nodes:>8} {full_time:>8.2f} {full_peak / 1e6:>9.1f} "
              f"{mini_time:>8.2f} {mini_peak / 1e6:>9.1f}")
    print(f"frontier: {frontier_size} nodes trained one minibatch epoch, "
          f"test accuracy {frontier_result.test_accuracy:.3f}")

    peaks = [(full_peak, mini_peak) for _, _, full_peak, _, mini_peak in rows]
    # Minibatch peak memory stays below full-batch at every compared size...
    for full_peak, mini_peak in peaks:
        assert mini_peak < full_peak
    # ...and is roughly size-free: growing the graph must not grow the
    # per-step peak proportionally (allow 2x slack for sampler overheads).
    assert peaks[-1][1] < 2.0 * peaks[0][1]
    # Full-batch peak does grow with the graph — that is the wall the
    # minibatch engine removes.
    assert peaks[-1][0] > peaks[0][0]
    # The frontier-size graph actually trained and predicts above chance.
    assert np.isfinite(frontier_result.test_accuracy)
    assert frontier_result.test_accuracy > 1.0 / 8 # 8 classes
