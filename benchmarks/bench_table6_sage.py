"""Table 6: GraphSAGE node classification with MixQ-GNN as a standalone method.

Shape reproduced: MixQ compresses GraphSAGE to ~5-7 average bits with
accuracy close to (sometimes above) the FP32 baseline, and 3-8x fewer
BitOPs.
"""

from _bench_utils import run_once

from repro.experiments.common import format_table
from repro.experiments.node_tables import table6_graphsage
from repro.experiments.reference import PAPER_TABLE6


def test_table6_graphsage(benchmark, light_scale):
    results = run_once(benchmark, table6_graphsage, datasets=("cora", "citeseer"),
                       scale=light_scale)

    for dataset, rows in results.items():
        print("\n" + format_table(f"Table 6 — GraphSAGE on {dataset}", rows))
        print(f"paper reference: {PAPER_TABLE6[dataset]}")
        by_method = {row.method: row for row in rows}
        fp32 = by_method["FP32"]
        moderate = by_method["MixQ(λ=0.1)"]
        aggressive = by_method["MixQ(λ=1)"]

        assert moderate.giga_bit_operations < fp32.giga_bit_operations
        assert aggressive.giga_bit_operations < fp32.giga_bit_operations
        assert fp32.giga_bit_operations / aggressive.giga_bit_operations >= 3.0
        assert aggressive.bits <= moderate.bits + 1e-6
        # MixQ maintains usable accuracy (the paper even reports small gains);
        # on the synthetic stand-in a larger margin absorbs QAT noise.
        assert moderate.mean_accuracy >= fp32.mean_accuracy - 0.35
        assert moderate.mean_accuracy > 0.3
