"""Table 1: space/time complexity comparison of DQ, A²Q and MixQ-GNN."""

from _bench_utils import run_once

from repro.experiments.table_static import format_table1, table1_complexity


def test_table1_complexity(benchmark):
    rows = run_once(benchmark, table1_complexity, num_nodes=2708, num_features=1433,
                    num_layers=3, bits=8.0)
    print("\n" + format_table1(rows))

    by_method = {row["method"]: row for row in rows}
    # Shape from the paper: A2Q stores per-node quantization parameters, so its
    # space and FP32-time grow with n while DQ and MixQ-GNN do not.
    assert by_method["A2Q"]["space_count"] > by_method["MixQ-GNN"]["space_count"]
    assert by_method["A2Q"]["time_fp32_count"] > by_method["MixQ-GNN"]["time_fp32_count"]
    assert by_method["DQ"]["time_fp32_count"] == by_method["MixQ-GNN"]["time_fp32_count"]
    # Integer propagation cost is the same for all three methods.
    assert len({row["time_int_count"] for row in rows}) == 1
