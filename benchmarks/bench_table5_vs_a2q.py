"""Table 5: A²Q vs MixQ + DQ — both exploit the graph structure.

Shape reproduced: MixQ + DQ reaches comparable accuracy to A²Q at a lower
computational budget on most datasets (the paper reports roughly half the
GBitOPs on Cora and PubMed).
"""

from _bench_utils import run_once

from repro.experiments.common import format_table
from repro.experiments.node_tables import table5_mixq_dq_vs_a2q
from repro.experiments.reference import PAPER_TABLE5


def test_table5_mixq_dq_vs_a2q(benchmark, light_scale):
    results = run_once(benchmark, table5_mixq_dq_vs_a2q, datasets=("cora", "pubmed"),
                       scale=light_scale)

    accuracy_gaps = []
    for dataset, rows in results.items():
        print("\n" + format_table(f"Table 5 — {dataset}", rows))
        print(f"paper reference: {PAPER_TABLE5[dataset]}")
        by_method = {row.method: row for row in rows}
        a2q = by_method["A2Q"]
        mixq_dq = by_method["MixQ + DQ"]
        # Both methods produce sub-FP32 representations and valid accuracies.
        assert a2q.bits < 32 and mixq_dq.bits < 32
        assert 0.0 <= mixq_dq.mean_accuracy <= 1.0
        # The paper's computational claim: MixQ + DQ does not need more
        # quantization parameters than A2Q's per-node machinery (Table 1) and
        # its accuracy stays in the same regime, well above chance.
        assert mixq_dq.mean_accuracy > 0.3
        accuracy_gaps.append(mixq_dq.mean_accuracy - a2q.mean_accuracy)

    # Across datasets MixQ + DQ remains competitive with A2Q on average
    # (the paper reports wins on Cora/PubMed and a loss on CiteSeer).
    assert sum(accuracy_gaps) / len(accuracy_gaps) > -0.30
