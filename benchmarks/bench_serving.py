"""Block-based vs. full-graph integer serving as the graph grows.

Shape reproduced: a serving request for a fixed number of seed nodes costs
the :class:`~repro.serving.BlockSession` only its fanout-bounded receptive
field, so per-request time and peak memory stay (roughly) flat as the
served graph grows — while the :class:`~repro.serving.FullGraphSession`
pays for every node and edge, so its cost keeps growing with the graph.

The artifact is exported once from a model calibrated on the smallest
graph and then served against ever larger SBM stand-ins drawn from the
same distribution — exactly the portability the deployment artifact is
for.  Wall-time and peak allocation of one request are measured with
``tracemalloc``, the same harness style as ``bench_minibatch_scaling.py``.

Sizes are deliberately modest at the quick scale (CI); run with
``REPRO_SCALE=standard`` for the larger sweep.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np
from _bench_utils import emit_result, run_once

from repro.experiments.config import current_scale
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.quant.qmodules import QuantNodeClassifier, sage_component_names, \
    uniform_assignment
from repro.serving import BlockSession, FullGraphSession, QuantizedArtifact
from repro.training.trainer import train_node_classifier

REQUEST_SEEDS = 64
FANOUT = 5


def _make_graph(num_nodes: int, seed: int = 0):
    config = SBMConfig(num_nodes=num_nodes, num_classes=8, num_features=64,
                       average_degree=8.0, train_per_class=num_nodes // 32,
                       num_val=num_nodes // 10, num_test=num_nodes // 5,
                       name=f"sbm-{num_nodes}")
    return generate_sbm_graph(config, seed=seed)


def _export_artifact(calibration_graph) -> QuantizedArtifact:
    """INT8 GraphSAGE artifact calibrated on the smallest graph."""
    model = QuantNodeClassifier.from_assignment(
        [(calibration_graph.num_features, 32),
         (32, calibration_graph.num_classes)],
        "sage", uniform_assignment(sage_component_names(2), 8),
        dropout=0.0, rng=np.random.default_rng(0))
    train_node_classifier(model, calibration_graph, epochs=2, lr=0.01)
    model.eval()
    return QuantizedArtifact.from_model(model)


def _timed_peak(fn) -> tuple:
    """(wall seconds, tracemalloc peak bytes) of one call."""
    tracemalloc.start()
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak


def _sweep():
    quick = current_scale().name == "quick"
    compare_sizes = [3_000, 9_000] if quick else [10_000, 30_000]
    frontier_size = 20_000 if quick else 100_000

    artifact = _export_artifact(_make_graph(compare_sizes[0]))
    rng = np.random.default_rng(7)

    rows = []
    for num_nodes in compare_sizes:
        graph = _make_graph(num_nodes)
        seeds = rng.choice(num_nodes, size=REQUEST_SEEDS, replace=False)

        full_time, full_peak = _timed_peak(
            lambda: FullGraphSession(artifact, graph).predict(seeds))
        block_time, block_peak = _timed_peak(
            lambda: BlockSession(artifact, graph, fanouts=FANOUT,
                                 batch_size=REQUEST_SEEDS).predict(seeds))
        rows.append((num_nodes, full_time, full_peak, block_time, block_peak))

    # The frontier size runs block-only: the full-graph engine's request
    # cost keeps growing with N, the block engine's does not.
    graph = _make_graph(frontier_size)
    seeds = rng.choice(frontier_size, size=REQUEST_SEEDS, replace=False)
    session = BlockSession(artifact, graph, fanouts=FANOUT,
                           batch_size=REQUEST_SEEDS)
    run = session.run(seeds)
    return rows, (frontier_size, run)


def test_serving_scaling(benchmark):
    rows, (frontier_size, frontier_run) = run_once(benchmark, _sweep)

    print(f"\nblock vs full-graph integer serving "
          f"(one {REQUEST_SEEDS}-seed request, fanout={FANOUT})")
    print(f"{'nodes':>8} {'full s':>8} {'full MB':>9} "
          f"{'block s':>8} {'block MB':>9}")
    for num_nodes, full_time, full_peak, block_time, block_peak in rows:
        print(f"{num_nodes:>8} {full_time:>8.3f} {full_peak / 1e6:>9.2f} "
              f"{block_time:>8.3f} {block_peak / 1e6:>9.2f}")
    print(f"frontier: {frontier_size} nodes, request touched "
          f"{frontier_run.num_input_nodes} input nodes / "
          f"{frontier_run.num_edges} edges in {frontier_run.seconds:.3f}s")

    full_peaks = [full_peak for _, _, full_peak, _, _ in rows]
    block_peaks = [block_peak for _, _, _, _, block_peak in rows]
    # Full-graph request cost grows with the graph...
    assert full_peaks[-1] > full_peaks[0]
    # ...block requests stay cheaper than full-graph at every size...
    for full_peak, block_peak in zip(full_peaks, block_peaks):
        assert block_peak < full_peak
    # ...and roughly size-free (2x slack for sampler bookkeeping, which
    # carries a few O(N) index arrays).
    assert block_peaks[-1] < 2.0 * block_peaks[0]
    # The frontier request stayed fanout-bounded and produced usable logits.
    assert frontier_run.num_input_nodes <= REQUEST_SEEDS * (FANOUT + 1) ** 2
    assert np.isfinite(frontier_run.logits).all()
    assert frontier_run.logits.shape == (REQUEST_SEEDS, 8)

    for num_nodes, full_time, full_peak, block_time, block_peak in rows:
        emit_result(f"serving.n{num_nodes}", {
            "full_ms": full_time * 1e3, "full_peak_mb": full_peak / 1e6,
            "block_ms": block_time * 1e3, "block_peak_mb": block_peak / 1e6,
        }, meta={"fanout": FANOUT, "request_seeds": REQUEST_SEEDS})
    emit_result("serving.frontier", {
        "request_ms": frontier_run.seconds * 1e3,
        "input_nodes": frontier_run.num_input_nodes,
        "edges": frontier_run.num_edges,
    }, meta={"nodes": frontier_size, "fanout": FANOUT,
             "request_seeds": REQUEST_SEEDS})
