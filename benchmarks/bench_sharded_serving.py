"""Shard-scaling of the multi-process serving tier under zipfian load.

Shape reproduced: a sharded serving fleet scales *aggregate* throughput
with the shard count because every shard serves its partition-local slice
of the traffic from its own process — its own CPU, its own
:class:`~repro.cache.BlockCache` — while cross-shard receptive fields are
resolved once through the halo protocol and then pinned in the
requester's cache.

Two numbers are measured for shards ∈ {1, 2, 4}, both on the same
deterministic zipfian trace and the identical engine front:

* ``aggregate_qps`` — the fleet's capacity: the trace is split into
  partition-local streams (each request replayed against the shard that
  owns the plurality of its seeds, exactly how the router assigns
  chunks), each stream is replayed closed-loop *in isolation*, and the
  per-shard rates are summed.  This is the standard capacity measure for
  a fleet — each shard is measured at full speed, as it would run on its
  own host/core — and is the number expected to scale with shards.
* ``fleet_qps`` — the same engine serving the full mixed trace
  *concurrently*.  On a host with >= shards cores this approaches the
  aggregate; on a single-core host (CI containers — recorded in the
  result meta as ``cpus``) every worker time-slices one core, so this
  number instead exposes the pure protocol overhead of sharding.

The run asserts the scaling contract on the capacity number —
``aggregate_qps`` strictly increases from 1 to 2 to 4 shards — plus the
accounting invariants (every request served exactly once, warm caches
actually hitting).  Results land in the ``BENCH_*.json`` trajectory via
``emit_result`` when ``REPRO_BENCH_EMIT`` is set.
"""

from __future__ import annotations

import os

import numpy as np
from _bench_utils import emit_result, run_once

from repro.experiments.config import current_scale
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.loadgen import TrafficConfig, generate_trace, run_load
from repro.loadgen.traffic import LoadTrace
from repro.quant.qmodules import QuantNodeClassifier, gcn_component_names, \
    uniform_assignment
from repro.serving import AsyncServingEngine, BlockSession, QuantizedArtifact
from repro.sharding import ShardedBlockSession
from repro.training.trainer import train_node_classifier

SHARD_COUNTS = (1, 2, 4)
PARTITION = "degree"
FANOUT = 8
BATCH = 256
#: Per-process cache entry budget — the per-host memory framing: every
#: process (the single-process baseline included) gets the same budget.
CACHE_PER_PROCESS = 16384


def _make_graph(num_nodes: int, seed: int = 11):
    config = SBMConfig(num_nodes=num_nodes, num_classes=8, num_features=64,
                       average_degree=12.0, train_per_class=num_nodes // 32,
                       num_val=num_nodes // 10, num_test=num_nodes // 5,
                       name=f"sbm-shard-{num_nodes}")
    return generate_sbm_graph(config, seed=seed)


def _export_artifact(calibration_graph) -> QuantizedArtifact:
    model = QuantNodeClassifier.from_assignment(
        [(calibration_graph.num_features, 32),
         (32, calibration_graph.num_classes)],
        "gcn", uniform_assignment(gcn_component_names(2), 8),
        dropout=0.0, rng=np.random.default_rng(1))
    train_node_classifier(model, calibration_graph, epochs=2, lr=0.01)
    model.eval()
    return QuantizedArtifact.from_model(model)


def _shard_streams(trace: LoadTrace, assignment: np.ndarray,
                   n_shards: int) -> "dict[int, LoadTrace]":
    """The trace split by routing shard — each request keyed to the shard
    owning the plurality of its seeds, mirroring the router's chunk
    assignment (arrivals zeroed: the streams replay closed-loop)."""
    buckets: "dict[int, list]" = {shard: [] for shard in range(n_shards)}
    for nodes in trace.requests:
        owner = int(np.bincount(assignment[nodes],
                                minlength=n_shards).argmax())
        buckets[owner].append(nodes)
    return {shard: LoadTrace(arrivals=np.zeros(len(requests)),
                             requests=tuple(requests), config=trace.config)
            for shard, requests in buckets.items() if requests}


def _measure(artifact, graph, trace, shards, clients):
    if shards == 1:
        session = BlockSession(artifact, graph, fanouts=FANOUT,
                               batch_size=BATCH, seed=7,
                               cache_size=CACHE_PER_PROCESS)
        assignment = np.zeros(graph.num_nodes, dtype=np.int64)
    else:
        session = ShardedBlockSession(artifact, graph, shards=shards,
                                      partition=PARTITION, fanouts=FANOUT,
                                      batch_size=BATCH, seed=7,
                                      cache_size=CACHE_PER_PROCESS)
        assignment = session.assignment
    streams = _shard_streams(trace, assignment, shards)
    try:
        with AsyncServingEngine(session, max_batch=BATCH, max_wait_ms=2.0,
                                workers=4) as engine:
            # Warm pass per stream: fork-time page faults and cold caches
            # stay outside every measured window.
            for stream in streams.values():
                run_load(engine, stream, mode="closed", clients=clients)

            fleet = run_load(engine, trace, mode="closed", clients=clients)

            per_shard = {}
            for shard, stream in sorted(streams.items()):
                run = run_load(engine, stream, mode="closed", clients=clients)
                per_shard[shard] = run
        hits = fleet.cache_hits or 0
        lookups = fleet.cache_lookups or 0
        return {
            "streams": {shard: stream.num_requests
                        for shard, stream in streams.items()},
            "per_shard_qps": {shard: run.achieved_qps
                              for shard, run in per_shard.items()},
            "aggregate_qps": sum(run.achieved_qps
                                 for run in per_shard.values()),
            "fleet_qps": fleet.achieved_qps,
            "fleet_requests": fleet.requests,
            "cache_hit_rate": hits / lookups if lookups else 0.0,
        }
    finally:
        close = getattr(session, "close", None)
        if close is not None:
            close()


def _sweep():
    quick = current_scale().name == "quick"
    num_nodes = 2_000 if quick else 6_000
    num_requests = 128 if quick else 384
    clients = 4

    graph = _make_graph(num_nodes)
    artifact = _export_artifact(graph)
    trace = generate_trace(TrafficConfig(
        num_nodes=num_nodes, pattern="zipfian", skew=1.1,
        seeds_per_request=16, num_requests=num_requests, seed=7))
    results = {shards: _measure(artifact, graph, trace, shards, clients)
               for shards in SHARD_COUNTS}
    return trace, results


def test_sharded_scaling(benchmark):
    trace, results = run_once(benchmark, _sweep)

    print(f"\nsharded serving: zipfian trace, {trace.num_requests} requests x "
          f"{trace.config.seeds_per_request} seeds, partition={PARTITION}, "
          f"cache={CACHE_PER_PROCESS}/process, "
          f"cpus={len(os.sched_getaffinity(0))}")
    print(f"{'shards':>7} {'aggregate QPS':>14} {'fleet QPS':>10} "
          f"{'hit rate':>9}  per-shard QPS (stream size)")
    for shards, result in results.items():
        detail = "  ".join(
            f"s{shard}:{qps:.0f} ({result['streams'][shard]}req)"
            for shard, qps in sorted(result["per_shard_qps"].items()))
        print(f"{shards:>7} {result['aggregate_qps']:>14.1f} "
              f"{result['fleet_qps']:>10.1f} "
              f"{result['cache_hit_rate']:>9.1%}  {detail}")

    for shards, result in results.items():
        # every request of the mixed trace was served exactly once
        assert result["fleet_requests"] == trace.num_requests
        # the deterministic trace must exercise every shard
        assert len(result["streams"]) == shards
        # warm zipfian traffic keeps every cache useful
        assert result["cache_hit_rate"] > 0.5

    # the scaling contract: fleet capacity strictly grows with shards
    assert results[4]["aggregate_qps"] > results[2]["aggregate_qps"] \
        > results[1]["aggregate_qps"]

    for shards, result in results.items():
        emit_result(
            f"sharded_serving.shards{shards}",
            {"aggregate_qps": round(result["aggregate_qps"], 1),
             "fleet_qps": round(result["fleet_qps"], 1),
             "cache_hit_rate": round(result["cache_hit_rate"], 4)},
            meta={"partition": PARTITION, "fanout": FANOUT,
                  "cache_per_process": CACHE_PER_PROCESS,
                  "pattern": "zipfian", "skew": 1.1,
                  "requests": trace.num_requests,
                  "seeds_per_request": trace.config.seeds_per_request,
                  "cpus": len(os.sched_getaffinity(0)),
                  "aggregate_method": "sum of per-shard isolated "
                                      "closed-loop replay"},
            kind="benchmark")
