"""Helpers shared by the benchmark files."""


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
