"""Helpers shared by the benchmark files."""

from __future__ import annotations

import os
from typing import Dict, Optional


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit_result(name: str, metrics: Dict[str, float],
                meta: Optional[dict] = None, path: Optional[str] = None,
                kind: str = "benchmark") -> Optional[str]:
    """Append one named result to a ``BENCH_*.json`` perf-trajectory file.

    Opt-in so interactive runs keep printing their tables and nothing
    else: the write only happens when ``path`` or the ``REPRO_BENCH_EMIT``
    environment variable names a target file.  Results merge into the
    existing file (one trajectory file accumulates the whole perf surface
    of a PR); see ``docs/benchmarks.md`` for the schema and
    ``repro.loadgen.report`` for the implementation.

    Returns the target path, or ``None`` when emission is off.
    """
    target = path or os.environ.get("REPRO_BENCH_EMIT", "")
    if not target:
        return None
    from repro.loadgen.report import emit

    emit(target, name, metrics, meta=meta, kind=kind)
    return target
