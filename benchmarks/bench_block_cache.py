"""Block-cache hit rate and request latency under repeat serving traffic.

Shape reproduced: serving traffic is heavily repetitive (the same popular
nodes are requested over and over), so a :class:`~repro.cache.BlockCache`
attached to a :class:`~repro.serving.BlockSession` turns steady-state
requests from "resample the receptive field" into a near-free lookup.  The
sweep drives an identical Zipf-flavoured request trace through sessions
with growing cache sizes over growing SBM graphs and reports

* the cache hit rate (grows with cache size, saturating once the popular
  working set fits), and
* the mean per-request latency of the steady-state (warm) passes, which
  must drop measurably against the uncached session — while staying
  bit-identical to it, the property the cache subsystem guarantees.

Sizes are deliberately modest at the quick scale (CI); run with
``REPRO_SCALE=standard`` for the larger sweep.
"""

from __future__ import annotations

import time

import numpy as np
from _bench_utils import emit_result, run_once

from repro.experiments.config import current_scale
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.quant.qmodules import QuantNodeClassifier, gcn_component_names, \
    uniform_assignment
from repro.serving import BlockSession, QuantizedArtifact
from repro.training.trainer import train_node_classifier

FANOUT = 5
REQUEST_SEEDS = 32
NUM_REQUESTS = 24
CACHE_SIZES = (0, 512, 65536)


def _make_graph(num_nodes: int, seed: int = 0):
    config = SBMConfig(num_nodes=num_nodes, num_classes=8, num_features=64,
                       average_degree=8.0, train_per_class=num_nodes // 32,
                       num_val=num_nodes // 10, num_test=num_nodes // 5,
                       name=f"sbm-{num_nodes}")
    return generate_sbm_graph(config, seed=seed)


def _export_artifact(calibration_graph) -> QuantizedArtifact:
    model = QuantNodeClassifier.from_assignment(
        [(calibration_graph.num_features, 32),
         (32, calibration_graph.num_classes)],
        "gcn", uniform_assignment(gcn_component_names(2), 8),
        dropout=0.0, rng=np.random.default_rng(0))
    train_node_classifier(model, calibration_graph, epochs=2, lr=0.01)
    model.eval()
    return QuantizedArtifact.from_model(model)


def _repeat_trace(num_nodes: int, seed: int = 7):
    """Repetitive request trace: a small popular pool, Zipf-ish reuse."""
    rng = np.random.default_rng(seed)
    pool = rng.choice(num_nodes, size=4 * REQUEST_SEEDS, replace=False)
    # A handful of distinct requests, then a shuffled repeat schedule —
    # exactly the repeat/overlap pattern online serving sees.
    base = [np.sort(rng.choice(pool, size=REQUEST_SEEDS, replace=False))
            for _ in range(4)]
    return [base[int(index)] for index in rng.integers(0, len(base),
                                                       size=NUM_REQUESTS)]


def _serve_trace(session, trace) -> float:
    start = time.perf_counter()
    for nodes in trace:
        session.predict(nodes)
    return (time.perf_counter() - start) / len(trace)


def _sweep():
    quick = current_scale().name == "quick"
    graph_sizes = [2_000, 6_000] if quick else [10_000, 30_000]
    artifact = _export_artifact(_make_graph(graph_sizes[0]))

    rows = []
    for num_nodes in graph_sizes:
        graph = _make_graph(num_nodes)
        trace = _repeat_trace(num_nodes)
        reference = BlockSession(artifact, graph, fanouts=FANOUT,
                                 batch_size=REQUEST_SEEDS).predict(trace[0])
        for cache_size in CACHE_SIZES:
            session = BlockSession(artifact, graph, fanouts=FANOUT,
                                   batch_size=REQUEST_SEEDS,
                                   cache_size=cache_size)
            _serve_trace(session, trace)          # cold pass warms the cache
            cold_stats = session.cache_stats()
            warm_latency = _serve_trace(session, trace)
            warm_stats = session.cache_stats()
            if warm_stats is None:
                hit_rate = 0.0
            else:                                 # steady-state hit rate
                hits = warm_stats.hits - cold_stats.hits
                lookups = warm_stats.lookups - cold_stats.lookups
                hit_rate = hits / lookups if lookups else 0.0
            exact = bool(np.array_equal(session.predict(trace[0]), reference))
            rows.append((num_nodes, cache_size, hit_rate, warm_latency, exact))
    return rows


def test_block_cache_hit_rate_and_latency(benchmark):
    rows = run_once(benchmark, _sweep)

    print(f"\nblock-cache repeat-traffic serving "
          f"({NUM_REQUESTS} x {REQUEST_SEEDS}-seed requests, fanout={FANOUT})")
    print(f"{'nodes':>8} {'cache':>8} {'hit rate':>9} {'warm ms':>9} {'exact':>6}")
    for num_nodes, cache_size, hit_rate, latency, exact in rows:
        print(f"{num_nodes:>8} {cache_size:>8} {hit_rate:>9.1%} "
              f"{latency * 1e3:>9.3f} {str(exact):>6}")

    by_graph: dict = {}
    for num_nodes, cache_size, hit_rate, latency, exact in rows:
        by_graph.setdefault(num_nodes, {})[cache_size] = (hit_rate, latency)
        # Cached serving is always bit-identical to uncached serving.
        assert exact
    for num_nodes, per_size in by_graph.items():
        uncached_latency = per_size[0][1]
        big_hit_rate, big_latency = per_size[CACHE_SIZES[-1]]
        small_hit_rate, _ = per_size[CACHE_SIZES[1]]
        # A warm, amply sized cache serves repeat traffic measurably faster
        # than the uncached session (the acceptance-criterion latency drop).
        assert big_latency < 0.7 * uncached_latency
        # Hit rate grows with capacity and the warm working set fits.
        assert big_hit_rate >= small_hit_rate
        assert big_hit_rate > 0.5
        emit_result(f"block_cache.n{num_nodes}", {
            "uncached_warm_ms": uncached_latency * 1e3,
            "cached_warm_ms": big_latency * 1e3,
            "cache_hit_rate": big_hit_rate,
        }, meta={"fanout": FANOUT, "requests": NUM_REQUESTS,
                 "request_seeds": REQUEST_SEEDS,
                 "cache_entries": CACHE_SIZES[-1]})
