"""Table 2: dataset characteristics registry."""

from _bench_utils import run_once

from repro.experiments.table_static import format_table2, table2_datasets


def test_table2_dataset_characteristics(benchmark):
    table = run_once(benchmark, table2_datasets)
    print("\n" + format_table2(table))

    # Every dataset the paper evaluates on is registered with its Table 2 shape.
    assert table["cora"]["num_nodes"] == 2708 and table["cora"]["num_classes"] == 7
    assert table["citeseer"]["num_nodes"] == 3327
    assert table["pubmed"]["num_classes"] == 3
    assert table["ogb-arxiv"]["num_classes"] == 40
    assert table["ogb-products"]["num_nodes"] == 2_449_029
    assert table["reddit-m"]["num_classes"] == 5
    assert table["csl"]["num_graphs"] == 150
