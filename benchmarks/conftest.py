"""Shared helpers for the benchmark harness.

Every benchmark runs its experiment exactly once through
``benchmark.pedantic(..., rounds=1, iterations=1)`` (the experiments are
full training runs, not micro-kernels), prints the paper-style table or
series, and asserts the qualitative *shape* of the result — orderings and
compression factors, never absolute accuracies, because the datasets are
synthetic stand-ins (see DESIGN.md).

Set ``REPRO_SCALE=standard`` for larger graphs / more seeds.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.config import current_scale


@pytest.fixture(scope="session")
def scale():
    """The experiment scale shared by all benchmarks."""
    return current_scale()


@pytest.fixture(scope="session")
def light_scale():
    """A reduced-seed variant for the heavier table benchmarks."""
    base = current_scale()
    return replace(base, num_seeds=max(1, base.num_seeds - 1))
