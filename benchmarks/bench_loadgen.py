"""Traffic-replay load harness: zipfian traffic against the async engine.

Shape reproduced: production serving traffic is skewed and repetitive, so
an :class:`~repro.serving.AsyncServingEngine` over a cached
:class:`~repro.serving.BlockSession` absorbs an open-loop zipfian request
stream with sane tail latencies and a warm cache — and the whole
measurement is *replayable*: the request trace is a pure function of its
:class:`~repro.loadgen.TrafficConfig`, so the same seed produces the same
traffic on every machine (the property CI's perf gate leans on).

The sweep replays one deterministic trace open-loop (Poisson arrivals)
and once closed-loop, asserting the accounting invariants (percentile
ordering, SLO rate bounds, every request served exactly once) and the
cache's steady-state effect.  Results land in the ``BENCH_*.json``
trajectory via ``emit_result`` when ``REPRO_BENCH_EMIT`` is set.

Sizes are deliberately modest at the quick scale (CI); run with
``REPRO_SCALE=standard`` for the larger sweep.
"""

from __future__ import annotations

import numpy as np
from _bench_utils import emit_result, run_once

from repro.experiments.config import current_scale
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.loadgen import TrafficConfig, generate_trace, metrics_from_run, run_load
from repro.quant.qmodules import QuantNodeClassifier, gcn_component_names, \
    uniform_assignment
from repro.serving import AsyncServingEngine, BlockSession, QuantizedArtifact
from repro.training.trainer import train_node_classifier

FANOUT = 5
SEEDS_PER_REQUEST = 8
DEADLINE_MS = 250.0
WARMUP = 8


def _make_graph(num_nodes: int, seed: int = 0):
    config = SBMConfig(num_nodes=num_nodes, num_classes=8, num_features=64,
                       average_degree=8.0, train_per_class=num_nodes // 32,
                       num_val=num_nodes // 10, num_test=num_nodes // 5,
                       name=f"sbm-{num_nodes}")
    return generate_sbm_graph(config, seed=seed)


def _export_artifact(calibration_graph) -> QuantizedArtifact:
    model = QuantNodeClassifier.from_assignment(
        [(calibration_graph.num_features, 32),
         (32, calibration_graph.num_classes)],
        "gcn", uniform_assignment(gcn_component_names(2), 8),
        dropout=0.0, rng=np.random.default_rng(0))
    train_node_classifier(model, calibration_graph, epochs=2, lr=0.01)
    model.eval()
    return QuantizedArtifact.from_model(model)


def _sweep():
    quick = current_scale().name == "quick"
    num_nodes = 2_000 if quick else 10_000
    qps = 60.0 if quick else 150.0
    duration = 0.6 if quick else 2.0

    graph = _make_graph(num_nodes)
    artifact = _export_artifact(graph)
    config = TrafficConfig(num_nodes=num_nodes, pattern="zipfian", skew=1.2,
                           seeds_per_request=SEEDS_PER_REQUEST,
                           arrival="poisson", qps=qps,
                           duration_seconds=duration, seed=7)
    trace = generate_trace(config)
    # Replayability: the trace is a pure function of its config.
    replay = generate_trace(config)
    deterministic = (
        np.array_equal(trace.arrivals, replay.arrivals)
        and all(np.array_equal(a, b)
                for a, b in zip(trace.requests, replay.requests)))

    runs = {}
    for mode in ("open", "closed"):
        session = BlockSession(artifact, graph, fanouts=FANOUT,
                               batch_size=256, seed=1, cache_size=65536)
        with AsyncServingEngine(session, max_batch=256, max_wait_ms=2.0,
                                workers=2) as engine:
            run = run_load(engine, trace, mode=mode, clients=4,
                           warmup_requests=WARMUP)
        runs[mode] = (run, metrics_from_run(run, deadline_ms=DEADLINE_MS))
    return deterministic, trace, runs


def test_loadgen_replay(benchmark):
    deterministic, trace, runs = run_once(benchmark, _sweep)

    print(f"\nload harness: zipfian traffic, {trace.num_requests} requests x "
          f"{SEEDS_PER_REQUEST} seeds (warm-up {WARMUP}), fanout={FANOUT}")
    print(f"{'mode':>8} {'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} "
          f"{'QPS':>8} {'SLO viol':>9} {'hit rate':>9}")
    for mode, (run, metrics) in runs.items():
        print(f"{mode:>8} {metrics['p50_ms']:>8.2f} {metrics['p95_ms']:>8.2f} "
              f"{metrics['p99_ms']:>8.2f} {metrics['achieved_qps']:>8.1f} "
              f"{metrics['slo_violation_rate']:>9.1%} "
              f"{metrics['cache_hit_rate']:>9.1%}")

    # same seed -> identical request trace (the replayability contract)
    assert deterministic
    for mode, (run, metrics) in runs.items():
        # every measured request was served exactly once
        assert run.requests == trace.num_requests - WARMUP
        assert run.nodes == run.requests * SEEDS_PER_REQUEST
        # percentile accounting is internally consistent
        assert metrics["p50_ms"] <= metrics["p95_ms"] <= metrics["p99_ms"] \
            <= metrics["max_ms"]
        assert 0.0 <= metrics["slo_violation_rate"] <= 1.0
        assert metrics["achieved_qps"] > 0
        # zipfian repeat traffic keeps the warm cache useful
        assert metrics["cache_hit_rate"] > 0.2
        emit_result(f"loadgen.{mode}", metrics,
                    meta={"pattern": "zipfian", "skew": 1.2,
                          "fanout": FANOUT, "warmup": WARMUP,
                          "seeds_per_request": SEEDS_PER_REQUEST},
                    kind="loadtest")
