"""Table 8: GIN graph classification on TU-style datasets with k-fold CV.

Shape reproduced: MixQ matches the FP32 architecture within a few points of
accuracy while running at a fraction of the FP32 BitOPs, and the
accuracy-first setting (λ=-ε) is at least as accurate as the aggressive one.
"""

from _bench_utils import run_once

from repro.experiments.common import format_table
from repro.experiments.graph_tables import table8_graph_classification
from repro.experiments.reference import PAPER_TABLE8


def test_table8_graph_classification(benchmark, light_scale):
    results = run_once(benchmark, table8_graph_classification,
                       datasets=("imdb-b", "proteins"), scale=light_scale,
                       num_layers=3, lambdas=(-1e-8, 1.0))

    for dataset, rows in results.items():
        print("\n" + format_table(f"Table 8 — {dataset} ({light_scale.num_folds}-fold CV)",
                                  rows))
        print(f"paper reference: {PAPER_TABLE8[dataset]}")
        by_method = {row.method: row for row in rows}
        fp32 = by_method["FP32"]
        gentle = by_method["MixQ(λ=-1e-08)"] if "MixQ(λ=-1e-08)" in by_method \
            else by_method["MixQ(λ=-1e-8)"]
        aggressive = by_method["MixQ(λ=1)"]

        # Quantized models cost a fraction of FP32 BitOPs.
        assert gentle.giga_bit_operations < fp32.giga_bit_operations
        assert fp32.giga_bit_operations / gentle.giga_bit_operations >= 2.0
        # Bit-widths stay inside the search space {4, 8}.
        assert 4.0 <= gentle.bits <= 8.0
        assert 4.0 <= aggressive.bits <= 8.0
        # Accuracy stays above chance for a 2-class task.
        assert gentle.mean_accuracy > 0.5 - 0.05
