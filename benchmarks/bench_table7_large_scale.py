"""Table 7: large-scale GraphSAGE + MixQ (Reddit / OGB-Proteins / Products / IGB stand-ins).

Shape reproduced: MixQ keeps the evaluation metric close to FP32 on the
Reddit-like graph, loses some ground on the harder stand-ins, and cuts
BitOPs by roughly 4-10x (the paper's average is 5.6x).  OGB-Proteins is
multi-label and evaluated with ROC-AUC.
"""

from dataclasses import replace

from _bench_utils import run_once

from repro.experiments.common import format_table
from repro.experiments.node_tables import table7_large_scale
from repro.experiments.reference import PAPER_TABLE7


def test_table7_large_scale_graphsage(benchmark, light_scale):
    scale = replace(light_scale, num_seeds=1)
    results = run_once(benchmark, table7_large_scale,
                       datasets=("reddit", "ogb-proteins"), scale=scale,
                       lambdas=(-1e-8, 1.0))

    for dataset, rows in results.items():
        metric = "ROC-AUC" if dataset == "ogb-proteins" else "Accuracy"
        print("\n" + format_table(f"Table 7 — {dataset}", rows, metric_name=metric))
        print(f"paper reference: {PAPER_TABLE7[dataset]}")
        by_method = {row.method: row for row in rows}
        fp32 = by_method["FP32"]
        gentle = by_method["MixQ(λ=-ε)"]
        aggressive = by_method["MixQ(λ=1)"]

        assert gentle.giga_bit_operations < fp32.giga_bit_operations
        assert fp32.giga_bit_operations / aggressive.giga_bit_operations >= 3.0
        assert aggressive.bits <= 8.0 + 1e-6
        # Metric stays meaningful after quantization (above chance / 0.5 AUC - margin).
        floor = 0.4 if dataset == "ogb-proteins" else 0.2
        assert gentle.mean_accuracy >= floor
